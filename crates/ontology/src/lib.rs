//! Ontology substrate for semantic matching.
//!
//! SemProp links attribute and table names to classes of a *domain-specific
//! ontology* through their embedding representations, then relates
//! attributes transitively through those links. The paper could only
//! evaluate SemProp on ChEMBL because that is the one dataset source with an
//! ontology (EFO). This crate provides:
//!
//! * [`Ontology`] — a small class hierarchy with labels and synonyms;
//! * [`efo_like`] — a bundled EFO-flavoured instance covering the vocabulary
//!   of the workspace's ChEMBL-style generator (assay types, organisms,
//!   tissues, cell types, measurement kinds, assay formats).

#![warn(missing_docs)]

use std::sync::OnceLock;

use valentine_table::FxHashMap;

/// One ontology class.
#[derive(Debug, Clone)]
pub struct OntologyClass {
    /// Canonical lowercase label.
    pub label: String,
    /// Alternative labels.
    pub synonyms: Vec<String>,
    /// Parent class id (None for roots).
    pub parent: Option<usize>,
}

/// A small ontology: classes with labels, synonyms, and an is-a hierarchy.
#[derive(Debug, Default)]
pub struct Ontology {
    name: String,
    classes: Vec<OntologyClass>,
    by_label: FxHashMap<String, usize>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new(name: impl Into<String>) -> Ontology {
        Ontology {
            name: name.into(),
            classes: Vec::new(),
            by_label: FxHashMap::default(),
        }
    }

    /// The ontology's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a class; `parent` must already exist if given. Returns the class
    /// id. Labels and synonyms are lowercased for lookup.
    ///
    /// # Panics
    /// Panics if the parent label is unknown (bundled data is static, so
    /// this is a programming error, not user input).
    pub fn add_class(&mut self, label: &str, synonyms: &[&str], parent: Option<&str>) -> usize {
        let parent_id = parent.map(|p| {
            *self
                .by_label
                .get(&p.to_lowercase())
                .unwrap_or_else(|| panic!("unknown parent class `{p}`"))
        });
        let id = self.classes.len();
        let label_lc = label.to_lowercase();
        self.by_label.insert(label_lc.clone(), id);
        let mut syns = Vec::with_capacity(synonyms.len());
        for s in synonyms {
            let s_lc = s.to_lowercase();
            self.by_label.entry(s_lc.clone()).or_insert(id);
            syns.push(s_lc);
        }
        self.classes.push(OntologyClass {
            label: label_lc,
            synonyms: syns,
            parent: parent_id,
        });
        id
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the ontology has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// All classes.
    pub fn classes(&self) -> &[OntologyClass] {
        &self.classes
    }

    /// The class id for a label or synonym (case-insensitive).
    pub fn class_of(&self, label: &str) -> Option<usize> {
        self.by_label.get(&label.to_lowercase()).copied()
    }

    /// Every (class id, label-or-synonym) pair — the lexicon the semantic
    /// matcher embeds.
    pub fn lexicon(&self) -> Vec<(usize, &str)> {
        let mut out = Vec::new();
        for (id, c) in self.classes.iter().enumerate() {
            out.push((id, c.label.as_str()));
            for s in &c.synonyms {
                out.push((id, s.as_str()));
            }
        }
        out
    }

    /// Tree distance between two classes through the is-a hierarchy
    /// (`Some(0)` for the same class); `None` when they are in different
    /// trees.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        let path_a = self.path_to_root(a);
        let path_b = self.path_to_root(b);
        for (da, ca) in path_a.iter().enumerate() {
            if let Some(db) = path_b.iter().position(|cb| cb == ca) {
                return Some(da + db);
            }
        }
        None
    }

    /// Semantic coherence of two classes in `[0, 1]`: `1/(1+distance)`,
    /// 0 when unrelated. SemProp uses this to score *coherent groups* of
    /// linked attributes.
    pub fn coherence(&self, a: usize, b: usize) -> f64 {
        match self.distance(a, b) {
            Some(d) => 1.0 / (1.0 + d as f64),
            None => 0.0,
        }
    }

    fn path_to_root(&self, mut c: usize) -> Vec<usize> {
        let mut path = vec![c];
        while let Some(p) = self.classes[c].parent {
            path.push(p);
            c = p;
        }
        path
    }
}

/// The bundled EFO-like ontology for the ChEMBL-style data.
pub fn efo_like() -> &'static Ontology {
    static EFO: OnceLock<Ontology> = OnceLock::new();
    EFO.get_or_init(|| {
        let mut o = Ontology::new("efo-like");
        o.add_class("experimental factor", &[], None);

        o.add_class(
            "assay",
            &["experiment", "test", "bioassay"],
            Some("experimental factor"),
        );
        o.add_class("binding assay", &["binding"], Some("assay"));
        o.add_class("functional assay", &["functional"], Some("assay"));
        o.add_class("adme assay", &["adme"], Some("assay"));
        o.add_class("toxicity assay", &["toxicity", "tox"], Some("assay"));
        o.add_class("physicochemical assay", &["physicochemical"], Some("assay"));

        o.add_class(
            "organism",
            &["species", "taxon"],
            Some("experimental factor"),
        );
        o.add_class("homo sapiens", &["human"], Some("organism"));
        o.add_class("rattus norvegicus", &["rat"], Some("organism"));
        o.add_class("mus musculus", &["mouse"], Some("organism"));
        o.add_class("canis familiaris", &["dog"], Some("organism"));

        o.add_class("tissue", &["organ"], Some("experimental factor"));
        o.add_class("liver", &["hepatic tissue"], Some("tissue"));
        o.add_class("brain", &["neural tissue"], Some("tissue"));
        o.add_class("kidney", &["renal tissue"], Some("tissue"));
        o.add_class("heart", &["cardiac tissue"], Some("tissue"));
        o.add_class("lung", &["pulmonary tissue"], Some("tissue"));

        o.add_class(
            "cell type",
            &["cell line", "cell"],
            Some("experimental factor"),
        );
        o.add_class("hepatocyte", &[], Some("cell type"));
        o.add_class("neuron", &[], Some("cell type"));
        o.add_class("hela", &[], Some("cell type"));
        o.add_class("cho", &[], Some("cell type"));

        o.add_class(
            "measurement",
            &["readout", "endpoint"],
            Some("experimental factor"),
        );
        o.add_class("ic50", &[], Some("measurement"));
        o.add_class("ec50", &[], Some("measurement"));
        o.add_class("ki", &[], Some("measurement"));
        o.add_class("potency", &[], Some("measurement"));

        o.add_class(
            "assay format",
            &["format", "bao format"],
            Some("experimental factor"),
        );
        o.add_class("cell-based format", &["cell based"], Some("assay format"));
        o.add_class(
            "organism-based format",
            &["organism based"],
            Some("assay format"),
        );
        o.add_class("biochemical format", &["biochemical"], Some("assay format"));
        o.add_class(
            "tissue-based format",
            &["tissue based"],
            Some("assay format"),
        );

        o.add_class(
            "target",
            &["protein target", "biological target"],
            Some("experimental factor"),
        );
        o.add_class(
            "confidence",
            &["confidence score", "certainty"],
            Some("experimental factor"),
        );
        o.add_class(
            "description",
            &["summary", "details"],
            Some("experimental factor"),
        );
        o.add_class("strain", &[], Some("organism"));
        o
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efo_like_loads() {
        let o = efo_like();
        assert!(o.len() > 30);
        assert_eq!(o.name(), "efo-like");
        assert!(!o.is_empty());
    }

    #[test]
    fn lookup_by_label_and_synonym() {
        let o = efo_like();
        let assay = o.class_of("assay").unwrap();
        assert_eq!(o.class_of("bioassay"), Some(assay));
        assert_eq!(o.class_of("ASSAY"), Some(assay), "case-insensitive");
        assert_eq!(o.class_of("unobtainium"), None);
    }

    #[test]
    fn distances_in_hierarchy() {
        let o = efo_like();
        let assay = o.class_of("assay").unwrap();
        let binding = o.class_of("binding assay").unwrap();
        let functional = o.class_of("functional assay").unwrap();
        let organism = o.class_of("organism").unwrap();
        assert_eq!(o.distance(assay, assay), Some(0));
        assert_eq!(o.distance(binding, assay), Some(1));
        assert_eq!(o.distance(binding, functional), Some(2));
        // via the shared root "experimental factor"
        assert_eq!(o.distance(binding, organism), Some(3));
    }

    #[test]
    fn coherence_decreases_with_distance() {
        let o = efo_like();
        let binding = o.class_of("binding assay").unwrap();
        let assay = o.class_of("assay").unwrap();
        let organism = o.class_of("organism").unwrap();
        assert_eq!(o.coherence(binding, binding), 1.0);
        assert!(o.coherence(binding, assay) > o.coherence(binding, organism));
    }

    #[test]
    fn disconnected_classes_have_no_distance() {
        let mut o = Ontology::new("test");
        o.add_class("a", &[], None);
        o.add_class("b", &[], None);
        let a = o.class_of("a").unwrap();
        let b = o.class_of("b").unwrap();
        assert_eq!(o.distance(a, b), None);
        assert_eq!(o.coherence(a, b), 0.0);
    }

    #[test]
    fn lexicon_contains_all_labels_and_synonyms() {
        let o = efo_like();
        let lex = o.lexicon();
        assert!(lex.len() > o.len(), "synonyms add entries");
        let assay = o.class_of("assay").unwrap();
        assert!(lex.iter().any(|&(id, s)| id == assay && s == "bioassay"));
    }

    #[test]
    fn synonym_conflicts_keep_first_class() {
        let mut o = Ontology::new("t");
        o.add_class("x", &["shared"], None);
        o.add_class("y", &["shared"], None);
        assert_eq!(o.class_of("shared"), o.class_of("x"));
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_panics() {
        let mut o = Ontology::new("t");
        o.add_class("child", &[], Some("ghost"));
    }
}
