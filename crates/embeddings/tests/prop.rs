//! Property-based tests for the embedding substrate.

use proptest::prelude::*;
use valentine_embeddings::{cosine, dot, norm, PretrainedEmbeddings, TripartiteGraph, WalkConfig};
use valentine_table::{Column, Table, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cosine_is_bounded_and_symmetric(
        a in proptest::collection::vec(-10.0f32..10.0, 8),
        b in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-5);
        // Cauchy-Schwarz: |a·b| ≤ |a||b|
        prop_assert!(dot(&a, &b).abs() <= norm(&a) * norm(&b) + 1e-3);
    }

    #[test]
    fn pretrained_tokens_are_deterministic_unit_vectors(token in "[a-z]{1,12}") {
        let m = PretrainedEmbeddings::new(32);
        let v1 = m.embed_token(&token);
        let v2 = m.embed_token(&token);
        prop_assert_eq!(&v1, &v2);
        prop_assert!((norm(&v1) - 1.0).abs() < 1e-3);
        prop_assert!((cosine(&v1, &v2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pretrained_phrase_similarity_is_symmetric(
        a in "[a-z_]{1,15}",
        b in "[a-z_]{1,15}",
    ) {
        let m = PretrainedEmbeddings::new(32);
        let ab = m.phrase_similarity(&a, &b);
        let ba = m.phrase_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }

    #[test]
    fn tripartite_walks_respect_structure(
        rows in 1usize..10,
        walks in 1usize..4,
        length in 2usize..20,
        seed in any::<u64>(),
    ) {
        let values: Vec<Value> = (0..rows).map(|i| Value::str(format!("v{}", i % 4))).collect();
        let t = Table::new("t", vec![Column::new("c", values)]).expect("valid");
        let g = TripartiteGraph::build(&[&t]);
        let corpus = g.generate_walks(&WalkConfig {
            sentence_length: length,
            walks_per_node: walks,
            seed,
        });
        prop_assert_eq!(corpus.len(), g.len() * walks);
        for sentence in &corpus {
            prop_assert!(!sentence.is_empty());
            prop_assert!(sentence.len() <= length);
            // walks alternate value ↔ non-value nodes
            for pair in sentence.windows(2) {
                let v0 = pair[0].starts_with("tt__");
                let v1 = pair[1].starts_with("tt__");
                prop_assert!(v0 ^ v1);
            }
        }
    }
}

// ── Optimized-kernel ↔ scalar-reference equivalence ─────────────────────
//
// The chunked dot/cosine kernels accumulate in f64 like the scalar
// references, so the only divergence is f64 reassociation followed by one
// rounding to f32 — ≤1e-6 covers it with a wide margin (one f32 ulp near
// 1.0 is ~6e-8). `cosine_many` runs the very same fused kernels as
// `cosine`, so it must agree bit-for-bit, and degenerate rows (length
// mismatch, zero vectors) must score exactly 0.

use valentine_embeddings::{cosine_many, cosine_scalar, dot_scalar};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_and_cosine_match_scalar_reference(
        mut a in proptest::collection::vec(-100.0f32..100.0, 0..35),
        mut b in proptest::collection::vec(-100.0f32..100.0, 0..35),
    ) {
        // trim to a common length: the kernels require equal-length input
        let n = a.len().min(b.len());
        a.truncate(n);
        b.truncate(n);
        let (fast, slow) = (dot(&a, &b), dot_scalar(&a, &b));
        prop_assert!((fast - slow).abs() <= 1e-6 * slow.abs().max(1.0), "{fast} vs {slow}");
        let (fast, slow) = (cosine(&a, &b), cosine_scalar(&a, &b));
        prop_assert!((fast - slow).abs() <= 1e-6, "{fast} vs {slow}");
    }

    #[test]
    fn constant_vectors_match_scalar_reference(v in -100.0f32..100.0, n in 0usize..40) {
        let a = vec![v; n];
        prop_assert!((dot(&a, &a) - dot_scalar(&a, &a)).abs() <= 1e-6 * dot_scalar(&a, &a).abs().max(1.0));
        prop_assert!((cosine(&a, &a) - cosine_scalar(&a, &a)).abs() <= 1e-6);
    }

    #[test]
    fn cosine_many_agrees_with_cosine_exactly(
        q in proptest::collection::vec(-100.0f32..100.0, 0..20),
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 0..20),
            0..6,
        ),
    ) {
        let batch = cosine_many(&q, &rows);
        prop_assert_eq!(batch.len(), rows.len());
        for (row, got) in rows.iter().zip(batch) {
            let want = if row.len() == q.len() { cosine(&q, row) } else { 0.0 };
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
