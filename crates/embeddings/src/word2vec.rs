//! A from-scratch word2vec: skip-gram with negative sampling (SGNS).
//!
//! EmbDI trains *local* embeddings on random-walk sentences generated from
//! the tables being matched (Table II fixes the training algorithm to
//! word2vec, window 3, 300 dimensions). This is a clean-room implementation
//! of the Mikolov et al. (NIPS'13) objective:
//!
//! * one input and one output vector per vocabulary word;
//! * positive pairs from a symmetric context window;
//! * `k` negative samples per positive pair, drawn from the unigram^0.75
//!   distribution;
//! * SGD with linearly decaying learning rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valentine_obs::cancel::{self, Cancelled};
use valentine_table::FxHashMap;

use crate::vector;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimensionality (paper default for EmbDI: 300).
    pub dims: usize,
    /// Symmetric context window size (paper default: 3).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub learning_rate: f32,
    /// Words with fewer occurrences are dropped from the vocabulary.
    pub min_count: usize,
    /// RNG seed (initialisation and negative sampling).
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dims: 300,
            window: 3,
            negative: 5,
            epochs: 5,
            learning_rate: 0.025,
            min_count: 1,
            seed: 0x5eed,
        }
    }
}

/// A trained embedding table.
#[derive(Debug)]
pub struct Word2Vec {
    dims: usize,
    vocab: FxHashMap<String, usize>,
    vectors: Vec<Vec<f32>>,
}

/// Size of the pre-computed negative-sampling table.
const NEG_TABLE_SIZE: usize = 1 << 16;

impl Word2Vec {
    /// Trains SGNS on tokenised sentences.
    ///
    /// # Errors
    /// Returns [`Cancelled`] when the thread's cancellation token fires at
    /// one of the per-sentence checkpoints — word2vec training is EmbDI's
    /// dominant cost (the paper's slowest method), so deadline enforcement
    /// has to reach inside the epoch loop, not just between epochs.
    pub fn train(
        sentences: &[Vec<String>],
        config: &Word2VecConfig,
    ) -> Result<Word2Vec, Cancelled> {
        assert!(config.dims > 0, "dims must be positive");
        assert!(config.window > 0, "window must be positive");

        // --- vocabulary
        let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
        for s in sentences {
            for w in s {
                *counts.entry(w.as_str()).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(&str, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= config.min_count)
            .collect();
        // deterministic ordering: by count desc, then lexicographic
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let vocab: FxHashMap<String, usize> = words
            .iter()
            .enumerate()
            .map(|(i, &(w, _))| (w.to_string(), i))
            .collect();
        let v = vocab.len();
        if v == 0 {
            return Ok(Word2Vec {
                dims: config.dims,
                vocab,
                vectors: Vec::new(),
            });
        }

        // --- negative sampling table (unigram^0.75)
        let pow_counts: Vec<f64> = words.iter().map(|&(_, c)| (c as f64).powf(0.75)).collect();
        let total: f64 = pow_counts.iter().sum();
        let mut neg_table = Vec::with_capacity(NEG_TABLE_SIZE);
        {
            let mut cum = 0.0;
            let mut word_idx = 0usize;
            for slot in 0..NEG_TABLE_SIZE {
                let target = (slot as f64 + 0.5) / NEG_TABLE_SIZE as f64 * total;
                while word_idx + 1 < v && cum + pow_counts[word_idx] < target {
                    cum += pow_counts[word_idx];
                    word_idx += 1;
                }
                neg_table.push(word_idx as u32);
            }
        }

        // --- init
        let mut rng = StdRng::seed_from_u64(config.seed);
        let bound = 0.5 / config.dims as f32;
        let mut input: Vec<Vec<f32>> = (0..v)
            .map(|_| {
                (0..config.dims)
                    .map(|_| rng.gen_range(-bound..bound))
                    .collect()
            })
            .collect();
        let mut output: Vec<Vec<f32>> = vec![vec![0.0; config.dims]; v];

        // encode sentences once
        let encoded: Vec<Vec<u32>> = sentences
            .iter()
            .map(|s| {
                s.iter()
                    .filter_map(|w| vocab.get(w).map(|&i| i as u32))
                    .collect()
            })
            .collect();
        let total_tokens: usize = encoded.iter().map(Vec::len).sum();
        let total_updates = (total_tokens * config.epochs).max(1);

        // --- SGD
        let mut processed = 0usize;
        let mut grad = vec![0.0f32; config.dims];
        for _ in 0..config.epochs {
            for sentence in &encoded {
                cancel::checkpoint()?;
                for (i, &center) in sentence.iter().enumerate() {
                    processed += 1;
                    let lr = config.learning_rate
                        * (1.0 - processed as f32 / total_updates as f32).max(1e-4);
                    let lo = i.saturating_sub(config.window);
                    let hi = (i + config.window + 1).min(sentence.len());
                    for j in lo..hi {
                        if j == i {
                            continue;
                        }
                        let context = sentence[j] as usize;
                        grad.iter_mut().for_each(|g| *g = 0.0);
                        let cin = center as usize;
                        // positive pair + negatives
                        for k in 0..=config.negative {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                let t = neg_table[rng.gen_range(0..NEG_TABLE_SIZE)] as usize;
                                if t == context {
                                    continue;
                                }
                                (t, 0.0f32)
                            };
                            let s = sigmoid(vector::dot(&input[cin], &output[target]));
                            let g = lr * (label - s);
                            for d in 0..config.dims {
                                grad[d] += g * output[target][d];
                                output[target][d] += g * input[cin][d];
                            }
                        }
                        for d in 0..config.dims {
                            input[cin][d] += grad[d];
                        }
                    }
                }
            }
        }

        Ok(Word2Vec {
            dims: config.dims,
            vocab,
            vectors: input,
        })
    }

    /// Embedding dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The trained vector for a word, if in vocabulary.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        self.vocab.get(word).map(|&i| self.vectors[i].as_slice())
    }

    /// Cosine similarity of two words; 0 when either is out of vocabulary.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        match (self.vector(a), self.vector(b)) {
            (Some(x), Some(y)) => vector::cosine(x, y),
            _ => 0.0,
        }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_corpus() -> Vec<Vec<String>> {
        // Two "topics": fruit words co-occur, metal words co-occur.
        let mut sentences = Vec::new();
        let fruit = ["apple", "banana", "cherry", "fruit"];
        let metal = ["iron", "copper", "zinc", "metal"];
        for r in 0..60 {
            let mut s1 = Vec::new();
            let mut s2 = Vec::new();
            for k in 0..8 {
                s1.push(fruit[(r + k) % 4].to_string());
                s2.push(metal[(r + 2 * k) % 4].to_string());
            }
            sentences.push(s1);
            sentences.push(s2);
        }
        sentences
    }

    fn small_config() -> Word2VecConfig {
        Word2VecConfig {
            dims: 24,
            window: 3,
            negative: 5,
            epochs: 10,
            learning_rate: 0.05,
            min_count: 1,
            seed: 7,
        }
    }

    #[test]
    fn learns_cooccurrence_structure() {
        let model = Word2Vec::train(&toy_corpus(), &small_config()).unwrap();
        let fruit = ["apple", "banana", "cherry", "fruit"];
        let metal = ["iron", "copper", "zinc", "metal"];
        let mut same_topic = 0.0;
        let mut cross_topic = 0.0;
        let mut same_n = 0;
        let mut cross_n = 0;
        for (i, a) in fruit.iter().enumerate() {
            for b in &fruit[i + 1..] {
                same_topic += model.similarity(a, b);
                same_n += 1;
            }
            for b in &metal {
                cross_topic += model.similarity(a, b);
                cross_n += 1;
            }
        }
        let same_topic = same_topic / same_n as f32;
        let cross_topic = cross_topic / cross_n as f32;
        assert!(
            same_topic > cross_topic + 0.1,
            "mean same-topic {same_topic} vs mean cross-topic {cross_topic}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Word2Vec::train(&toy_corpus(), &small_config()).unwrap();
        let b = Word2Vec::train(&toy_corpus(), &small_config()).unwrap();
        assert_eq!(a.vector("apple"), b.vector("apple"));
    }

    #[test]
    fn different_seeds_give_different_vectors() {
        let a = Word2Vec::train(&toy_corpus(), &small_config()).unwrap();
        let mut cfg = small_config();
        cfg.seed = 8;
        let b = Word2Vec::train(&toy_corpus(), &cfg).unwrap();
        assert_ne!(a.vector("apple"), b.vector("apple"));
    }

    #[test]
    fn vocabulary_and_oov() {
        let model = Word2Vec::train(&toy_corpus(), &small_config()).unwrap();
        assert_eq!(model.vocab_size(), 8);
        assert!(model.vector("apple").is_some());
        assert!(model.vector("plutonium").is_none());
        assert_eq!(model.similarity("apple", "plutonium"), 0.0);
    }

    #[test]
    fn min_count_filters_rare_words() {
        let mut cfg = small_config();
        cfg.min_count = 5;
        let mut corpus = toy_corpus();
        corpus.push(vec!["rare".to_string()]);
        let model = Word2Vec::train(&corpus, &cfg).unwrap();
        assert!(model.vector("rare").is_none());
    }

    #[test]
    fn empty_corpus() {
        let model = Word2Vec::train(&[], &small_config()).unwrap();
        assert_eq!(model.vocab_size(), 0);
        assert!(model.vector("x").is_none());
    }

    #[test]
    fn vectors_have_configured_dims() {
        let model = Word2Vec::train(&toy_corpus(), &small_config()).unwrap();
        assert_eq!(model.vector("apple").unwrap().len(), 24);
        assert_eq!(model.dims(), 24);
    }
}
