//! A deterministic synthetic stand-in for pre-trained word embeddings.
//!
//! SemProp loads GloVe-style vectors trained on natural-language corpora.
//! We cannot bundle those, so this model *constructs* a vector per token
//! with three additive components:
//!
//! 1. a **base vector** drawn from a Gaussian seeded by the token's hash —
//!    unrelated tokens are near-orthogonal in high dimension;
//! 2. **character-n-gram vectors** (fastText-style) — typos and
//!    morphological variants of the same word stay close;
//! 3. a **synset centroid** pulled from the bundled thesaurus — synonyms
//!    ("spouse"/"partner") end up close, hypernym-related words moderately
//!    close.
//!
//! The resulting geometry mirrors the behaviour the paper observes:
//! general-English vocabulary has useful neighbourhoods, while
//! domain-specific jargon (ChEMBL assay codes, hashes) gets a pure random
//! vector — near-orthogonal to every ontology label — which is exactly why
//! SemProp's pre-trained embeddings "are not reliable … when the data domain
//! is too specific".

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valentine_table::fxhash::hash_str;
use valentine_table::FxHashMap;
use valentine_text::Thesaurus;

use crate::vector;

/// Weights of the three components (base, n-gram, synset).
const W_BASE: f32 = 0.55;
const W_NGRAM: f32 = 0.25;
const W_SYNSET: f32 = 0.9;

/// The synthetic pre-trained embedding model. Cheap to create; vectors are
/// computed on demand and memoised.
pub struct PretrainedEmbeddings {
    dims: usize,
    thesaurus: &'static Thesaurus,
    cache: Mutex<FxHashMap<String, Vec<f32>>>,
}

impl std::fmt::Debug for PretrainedEmbeddings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PretrainedEmbeddings")
            .field("dims", &self.dims)
            .finish_non_exhaustive()
    }
}

impl PretrainedEmbeddings {
    /// Creates a model with the given dimensionality (the paper's systems
    /// use 300; tests use less for speed).
    pub fn new(dims: usize) -> PretrainedEmbeddings {
        assert!(dims > 0, "dimensionality must be positive");
        PretrainedEmbeddings {
            dims,
            thesaurus: Thesaurus::builtin(),
            cache: Mutex::new(FxHashMap::default()),
        }
    }

    /// Embedding dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The vector for a single lowercase token. Deterministic across
    /// processes.
    pub fn embed_token(&self, token: &str) -> Vec<f32> {
        let token = token.to_lowercase();
        if let Some(v) = self.cache.lock().get(&token) {
            return v.clone();
        }
        let v = self.compute_token(&token);
        self.cache.lock().insert(token, v.clone());
        v
    }

    /// The vector for a phrase: the normalised mean of its tokens' vectors
    /// (after identifier tokenisation), or `None` for an empty phrase.
    pub fn embed_phrase(&self, phrase: &str) -> Option<Vec<f32>> {
        let tokens = valentine_text::tokenize_identifier(phrase);
        if tokens.is_empty() {
            return None;
        }
        let vectors: Vec<Vec<f32>> = tokens.iter().map(|t| self.embed_token(t)).collect();
        let refs: Vec<&[f32]> = vectors.iter().map(Vec::as_slice).collect();
        let mut m = vector::mean(&refs)?;
        normalize(&mut m);
        Some(m)
    }

    /// Cosine similarity of two phrases (0 if either is empty).
    pub fn phrase_similarity(&self, a: &str, b: &str) -> f32 {
        match (self.embed_phrase(a), self.embed_phrase(b)) {
            (Some(x), Some(y)) => vector::cosine(&x, &y),
            _ => 0.0,
        }
    }

    fn compute_token(&self, token: &str) -> Vec<f32> {
        let mut v = gaussian_vector(&format!("base::{token}"), self.dims);
        vector::scale(&mut v, W_BASE);

        // fastText-style char n-grams (n = 3, with boundary markers).
        let bounded: Vec<char> = format!("<{token}>").chars().collect();
        if bounded.len() >= 3 {
            let grams: Vec<String> = bounded.windows(3).map(|w| w.iter().collect()).collect();
            // 1/√n scaling: the grams are independent Gaussian vectors, so
            // dividing by n would shrink the component's total norm as
            // tokens grow — √n keeps it at W_NGRAM for every token length,
            // which is what lets typos sharing most grams stay close.
            let w = W_NGRAM / (grams.len() as f32).sqrt();
            for g in grams {
                let gv = gaussian_vector(&format!("gram::{g}"), self.dims);
                for (x, y) in v.iter_mut().zip(&gv) {
                    *x += w * y;
                }
            }
        }

        // Synset centroid: every member of the token's synset shares this
        // component, so synonyms land close together.
        if let Some(synset) = self.thesaurus.synset_of(token) {
            let sv = gaussian_vector(&format!("synset::{synset}"), self.dims);
            for (x, y) in v.iter_mut().zip(&sv) {
                *x += W_SYNSET * y;
            }
        }

        normalize(&mut v);
        v
    }
}

fn normalize(v: &mut [f32]) {
    let n = vector::norm(v);
    if n > 0.0 {
        vector::scale(v, 1.0 / n);
    }
}

/// A unit-variance Gaussian vector seeded by a string key (Box-Muller over a
/// seeded StdRng) — the determinism anchor of the whole model.
fn gaussian_vector(key: &str, dims: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(hash_str(key));
    let mut v = Vec::with_capacity(dims);
    while v.len() < dims {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        v.push((r * theta.cos()) as f32);
        if v.len() < dims {
            v.push((r * theta.sin()) as f32);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PretrainedEmbeddings {
        PretrainedEmbeddings::new(64)
    }

    #[test]
    fn deterministic() {
        let m1 = model();
        let m2 = model();
        assert_eq!(m1.embed_token("country"), m2.embed_token("country"));
        assert_eq!(m1.embed_phrase("last_name"), m2.embed_phrase("last_name"));
    }

    #[test]
    fn vectors_are_unit_length() {
        let m = model();
        for t in ["country", "xqzzy", "spouse"] {
            let v = m.embed_token(t);
            assert!((vector::norm(&v) - 1.0).abs() < 1e-4, "{t}");
            assert_eq!(v.len(), 64);
        }
    }

    #[test]
    fn synonyms_are_closer_than_random_words() {
        let m = PretrainedEmbeddings::new(128);
        let syn = m.phrase_similarity("spouse", "partner");
        let unrelated = m.phrase_similarity("spouse", "hydrogen");
        assert!(
            syn > unrelated + 0.3,
            "synonyms {syn} vs unrelated {unrelated}"
        );
        assert!(syn > 0.5, "synonym similarity should be high: {syn}");
    }

    #[test]
    fn typos_stay_close_via_ngrams() {
        // High dimensionality on purpose: the shared-gram signal (~0.07
        // cosine) is dimension-independent while random-vector noise decays
        // as 1/√dims, so 2048 dims puts the comparison well outside noise.
        let m = PretrainedEmbeddings::new(2048);
        let typo = m.phrase_similarity("country", "countrу"); // cyrillic у — still shares most grams
        let other = m.phrase_similarity("country", "velocity");
        assert!(typo > other, "typo {typo} vs other {other}");
    }

    #[test]
    fn domain_jargon_is_orthogonal_to_english() {
        let m = PretrainedEmbeddings::new(256);
        // hash-like domain tokens get pure random vectors
        let s = m.phrase_similarity("axj19q7", "organism");
        assert!(s.abs() < 0.25, "jargon must be near-orthogonal, got {s}");
    }

    #[test]
    fn phrase_embedding_handles_identifiers() {
        let m = model();
        assert!(m.embed_phrase("last_name").is_some());
        assert!(m.embed_phrase("").is_none());
        assert!(m.embed_phrase("___").is_none());
        // multiword phrase similarity is symmetric
        let ab = m.phrase_similarity("postal_code", "zip");
        let ba = m.phrase_similarity("zip", "postal_code");
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn case_insensitive() {
        let m = model();
        assert_eq!(m.embed_token("Country"), m.embed_token("country"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = PretrainedEmbeddings::new(0);
    }
}
