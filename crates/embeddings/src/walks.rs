//! EmbDI's tripartite graph and random-walk corpus generation.
//!
//! EmbDI (Cappuzzo et al., SIGMOD'20) turns relational data into sentences:
//! a heterogeneous graph holds one node per **row** (record id), one per
//! **attribute** (column), and one per distinct **value**; each cell links
//! its value node to both its row node and its attribute node. Random walks
//! over this graph become the training corpus for word2vec. Crucially,
//! *value* nodes are shared across the two tables being matched, so an
//! overlap in instances creates bridges between the tables' attribute nodes.
//!
//! The paper observes (and our reproduction preserves) that walk generation
//! "does not scale efficiently when the number of available instances grow" —
//! the corpus is `walks_per_node × sentence_length × |nodes|` tokens.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valentine_table::{FxHashMap, Table};

/// Node kinds in the tripartite graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A record (row) id node, unique per (table, row).
    Row,
    /// An attribute (column) node, unique per (table, column).
    Attribute,
    /// A value node, shared across tables when rendered values are equal.
    Value,
}

/// Walk generation parameters.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Tokens per sentence (paper default: 60).
    pub sentence_length: usize,
    /// Walks started from every node.
    pub walks_per_node: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            sentence_length: 60,
            walks_per_node: 5,
            seed: 0xe4b,
        }
    }
}

/// The tripartite row/attribute/value graph of one or more tables.
#[derive(Debug)]
pub struct TripartiteGraph {
    labels: Vec<String>,
    kinds: Vec<NodeKind>,
    adjacency: Vec<Vec<u32>>,
    by_label: FxHashMap<String, u32>,
}

impl TripartiteGraph {
    /// Builds the graph over the given tables. Node labels:
    /// rows are `idx__<table>__<row>`, attributes are `cid__<table>__<column>`,
    /// values are `tt__<lowercased rendered value>`.
    pub fn build(tables: &[&Table]) -> TripartiteGraph {
        let mut g = TripartiteGraph {
            labels: Vec::new(),
            kinds: Vec::new(),
            adjacency: Vec::new(),
            by_label: FxHashMap::default(),
        };
        for table in tables {
            let row_nodes: Vec<u32> = (0..table.height())
                .map(|r| g.intern(format!("idx__{}__{r}", table.name()), NodeKind::Row))
                .collect();
            for col in table.columns() {
                let attr = g.intern(
                    format!("cid__{}__{}", table.name(), col.name()),
                    NodeKind::Attribute,
                );
                for (r, v) in col.values().iter().enumerate() {
                    if v.is_null() {
                        continue;
                    }
                    let val = g.intern(
                        format!("tt__{}", v.render().to_lowercase()),
                        NodeKind::Value,
                    );
                    g.connect(val, row_nodes[r]);
                    g.connect(val, attr);
                }
            }
        }
        g
    }

    /// The canonical label of a table's attribute node.
    pub fn attribute_label(table: &str, column: &str) -> String {
        format!("cid__{table}__{column}")
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Node id by label.
    pub fn node(&self, label: &str) -> Option<u32> {
        self.by_label.get(label).copied()
    }

    /// Kind of a node.
    pub fn kind(&self, node: u32) -> NodeKind {
        self.kinds[node as usize]
    }

    /// Neighbours of a node.
    pub fn neighbors(&self, node: u32) -> &[u32] {
        &self.adjacency[node as usize]
    }

    /// Generates the random-walk corpus: `walks_per_node` uniform random
    /// walks of `sentence_length` tokens from every node, emitting node
    /// labels as words. Nodes without neighbours yield single-token
    /// sentences.
    pub fn generate_walks(&self, config: &WalkConfig) -> Vec<Vec<String>> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut corpus = Vec::with_capacity(self.len() * config.walks_per_node);
        for start in 0..self.len() as u32 {
            for _ in 0..config.walks_per_node {
                let mut sentence = Vec::with_capacity(config.sentence_length);
                let mut current = start;
                sentence.push(self.labels[current as usize].clone());
                while sentence.len() < config.sentence_length {
                    let neigh = &self.adjacency[current as usize];
                    if neigh.is_empty() {
                        break;
                    }
                    current = neigh[rng.gen_range(0..neigh.len())];
                    sentence.push(self.labels[current as usize].clone());
                }
                corpus.push(sentence);
            }
        }
        corpus
    }

    fn intern(&mut self, label: String, kind: NodeKind) -> u32 {
        if let Some(&id) = self.by_label.get(&label) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.by_label.insert(label.clone(), id);
        self.labels.push(label);
        self.kinds.push(kind);
        self.adjacency.push(Vec::new());
        id
    }

    fn connect(&mut self, a: u32, b: u32) {
        self.adjacency[a as usize].push(b);
        self.adjacency[b as usize].push(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valentine_table::Value;

    fn table_a() -> Table {
        Table::from_pairs(
            "a",
            vec![
                ("city", vec![Value::str("delft"), Value::str("lyon")]),
                ("pop", vec![Value::Int(100), Value::Int(200)]),
            ],
        )
        .unwrap()
    }

    fn table_b() -> Table {
        Table::from_pairs(
            "b",
            vec![("town", vec![Value::str("delft"), Value::str("athens")])],
        )
        .unwrap()
    }

    #[test]
    fn graph_shape() {
        let a = table_a();
        let g = TripartiteGraph::build(&[&a]);
        // 2 rows + 2 attrs + 4 distinct values
        assert_eq!(g.len(), 8);
        let attr = g.node("cid__a__city").unwrap();
        assert_eq!(g.kind(attr), NodeKind::Attribute);
        assert_eq!(g.neighbors(attr).len(), 2, "one edge per non-null cell");
    }

    #[test]
    fn shared_values_bridge_tables() {
        let a = table_a();
        let b = table_b();
        let g = TripartiteGraph::build(&[&a, &b]);
        let delft = g.node("tt__delft").expect("shared value node");
        // connected to: row a0, attr a.city, row b0, attr b.town
        assert_eq!(g.neighbors(delft).len(), 4);
    }

    #[test]
    fn nulls_are_skipped() {
        let t = Table::from_pairs("t", vec![("x", vec![Value::Null, Value::str("v")])]).unwrap();
        let g = TripartiteGraph::build(&[&t]);
        let attr = g.node("cid__t__x").unwrap();
        assert_eq!(g.neighbors(attr).len(), 1);
    }

    #[test]
    fn walks_have_requested_shape() {
        let a = table_a();
        let g = TripartiteGraph::build(&[&a]);
        let cfg = WalkConfig {
            sentence_length: 10,
            walks_per_node: 3,
            seed: 1,
        };
        let corpus = g.generate_walks(&cfg);
        assert_eq!(corpus.len(), g.len() * 3);
        for sentence in &corpus {
            assert!(sentence.len() <= 10);
            assert!(!sentence.is_empty());
        }
    }

    #[test]
    fn walks_alternate_between_node_types() {
        // Edges only connect values to rows/attrs, so consecutive tokens
        // always include a value node.
        let a = table_a();
        let g = TripartiteGraph::build(&[&a]);
        let cfg = WalkConfig {
            sentence_length: 20,
            walks_per_node: 2,
            seed: 3,
        };
        for sentence in g.generate_walks(&cfg) {
            for pair in sentence.windows(2) {
                let v0 = pair[0].starts_with("tt__");
                let v1 = pair[1].starts_with("tt__");
                assert!(v0 ^ v1, "exactly one endpoint of each step is a value node");
            }
        }
    }

    #[test]
    fn walks_deterministic_under_seed() {
        let a = table_a();
        let g = TripartiteGraph::build(&[&a]);
        let cfg = WalkConfig::default();
        assert_eq!(g.generate_walks(&cfg), g.generate_walks(&cfg));
    }

    #[test]
    fn empty_table_graph() {
        let t = Table::empty("e");
        let g = TripartiteGraph::build(&[&t]);
        assert!(g.is_empty());
        assert!(g.generate_walks(&WalkConfig::default()).is_empty());
    }
}
