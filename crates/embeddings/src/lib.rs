//! Word embeddings for schema matching.
//!
//! Two of Valentine's matchers need embeddings:
//!
//! * **SemProp** consumes *pre-trained* word embeddings (GloVe/word2vec
//!   trained on natural-language corpora in the original system). Shipping a
//!   multi-gigabyte embedding file is impossible here, so [`pretrained`]
//!   provides a deterministic synthetic stand-in with the properties that
//!   matter for reproduction: synonyms (per the bundled thesaurus) are close,
//!   morphologically similar words are close (char-n-gram components), and
//!   out-of-vocabulary domain jargon is near-orthogonal to everything — the
//!   very property that makes SemProp underperform on ChEMBL in the paper.
//! * **EmbDI** trains *local* embeddings from scratch on the two tables being
//!   matched: a tripartite row/attribute/value graph ([`walks`]) generates
//!   random-walk sentences, and a skip-gram-with-negative-sampling trainer
//!   ([`word2vec`]) embeds every graph node.
//!
//! [`vector`] holds the shared dense-vector arithmetic.

#![warn(missing_docs)]

pub mod pretrained;
pub mod vector;
pub mod walks;
pub mod word2vec;

pub use pretrained::PretrainedEmbeddings;
pub use vector::{add_assign, cosine, cosine_many, cosine_scalar, dot, dot_scalar, norm, scale};
pub use walks::{TripartiteGraph, WalkConfig};
pub use word2vec::{Word2Vec, Word2VecConfig};
