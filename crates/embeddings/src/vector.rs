//! Dense `f32` vector arithmetic shared by the embedding models.
//!
//! # Kernel layout
//!
//! Dot products are the inner loop of word2vec training (EmbDI) and of the
//! SemProp/EmbDI cosine re-rank, so the reductions here run over fixed-width
//! chunks with [`LANES`] *independent* partial sums: a sequential
//! `iter().sum()` forms one serial dependency chain the autovectorizer must
//! preserve, while separate lanes vectorize to packed multiply-adds and
//! reduce once at the end.
//!
//! Products accumulate in `f64`. That costs a widening conversion per lane
//! but makes the kernels *more* accurate than the scalar f32 chain they
//! replaced, and keeps the optimized/reference difference down at f64
//! reassociation scale so the equivalence suite can pin it tightly. The
//! retained `*_scalar` references accumulate sequentially in f64 for the
//! same reason; both then round to `f32` once.
//!
//! [`cosine_many`] is the fused batch kernel for re-ranking one query
//! against many candidates: the query norm is computed once, and each
//! candidate row gets a single fused pass producing its dot and norm
//! together.

/// Accumulator width of the chunked kernels: eight lanes of `f64` span two
/// AVX-512 / four AVX2 registers of independent partial sums.
const LANES: usize = 8;

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    dot_f64(a, b) as f32
}

/// Retained scalar reference for [`dot`]: strictly sequential accumulation.
/// Kept as the equivalence and floor-speedup baseline for the proptest
/// suite and the `bench/kernels` guard.
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += (*x as f64) * (*y as f64);
    }
    acc as f32
}

/// Chunked multi-accumulator dot product in `f64`.
fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    let mut a_chunks = a.chunks_exact(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        for l in 0..LANES {
            acc[l] += (ca[l] as f64) * (cb[l] as f64);
        }
    }
    let mut total: f64 = acc.iter().sum();
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        total += (*x as f64) * (*y as f64);
    }
    total
}

/// Fused `(a·b, |b|²)` in one pass over `b` — the per-row kernel of
/// [`cosine_many`].
fn dot_and_norm2(a: &[f32], b: &[f32]) -> (f64, f64) {
    let mut a_chunks = a.chunks_exact(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    let mut dot_acc = [0.0f64; LANES];
    let mut nrm_acc = [0.0f64; LANES];
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        for l in 0..LANES {
            let x = ca[l] as f64;
            let y = cb[l] as f64;
            dot_acc[l] += x * y;
            nrm_acc[l] += y * y;
        }
    }
    let mut dot: f64 = dot_acc.iter().sum();
    let mut nrm: f64 = nrm_acc.iter().sum();
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        dot += (*x as f64) * (*y as f64);
        nrm += (*y as f64) * (*y as f64);
    }
    (dot, nrm)
}

/// Euclidean norm.
pub fn norm(a: &[f32]) -> f32 {
    dot_f64(a, a).sqrt() as f32
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let na2 = dot_f64(a, a);
    let (ab, nb2) = dot_and_norm2(a, b);
    if na2 == 0.0 || nb2 == 0.0 {
        return 0.0;
    }
    ((ab / (na2.sqrt() * nb2.sqrt())) as f32).clamp(-1.0, 1.0)
}

/// Retained scalar reference for [`cosine`], built on [`dot_scalar`].
pub fn cosine_scalar(a: &[f32], b: &[f32]) -> f32 {
    let na = dot_scalar(a, a).sqrt();
    let nb = dot_scalar(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot_scalar(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine of one query against many candidate rows, with the query norm
/// hoisted out of the loop and each row handled by the fused
/// [`dot_and_norm2`] kernel. This is the SemProp ontology-link and EmbDI
/// column re-rank shape: one query embedding scored against a matrix of
/// candidates.
///
/// Rows whose length differs from the query's score 0 (callers pass
/// same-model embeddings; a mismatch is a degenerate candidate, not a
/// reason to abort a batch). Zero vectors on either side also score 0,
/// matching [`cosine`].
pub fn cosine_many<I>(query: &[f32], rows: I) -> Vec<f32>
where
    I: IntoIterator,
    I::Item: AsRef<[f32]>,
{
    let nq2 = dot_f64(query, query);
    rows.into_iter()
        .map(|row| {
            let row = row.as_ref();
            if nq2 == 0.0 || row.len() != query.len() {
                return 0.0;
            }
            let (ab, nr2) = dot_and_norm2(query, row);
            if nr2 == 0.0 {
                return 0.0;
            }
            ((ab / (nq2.sqrt() * nr2.sqrt())) as f32).clamp(-1.0, 1.0)
        })
        .collect()
}

/// `a += b`.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut a_chunks = a.chunks_exact_mut(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        for l in 0..LANES {
            ca[l] += cb[l];
        }
    }
    for (x, y) in a_chunks
        .into_remainder()
        .iter_mut()
        .zip(b_chunks.remainder())
    {
        *x += y;
    }
}

/// `a *= s`.
pub fn scale(a: &mut [f32], s: f32) {
    let mut chunks = a.chunks_exact_mut(LANES);
    for c in &mut chunks {
        for l in 0..LANES {
            c[l] *= s;
        }
    }
    for x in chunks.into_remainder() {
        *x *= s;
    }
}

/// Normalises `a` to unit length in place (no-op for the zero vector).
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
}

/// Mean of several vectors; `None` when the input is empty.
pub fn mean(vectors: &[&[f32]]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let mut acc = vec![0.0f32; first.len()];
    for v in vectors {
        add_assign(&mut acc, v);
    }
    scale(&mut acc, 1.0 / vectors.len() as f32);
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.3, -0.7, 0.1];
        let b = [0.6, -1.4, 0.2];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chunked_kernels_match_scalar_reference() {
        // lengths straddling the lane width, plus typical embedding dims
        for n in [0usize, 1, 7, 8, 9, 31, 32, 100, 128] {
            let a: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.7).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| ((i as f32) * 1.3).cos()).collect();
            let (fast, slow) = (dot(&a, &b), dot_scalar(&a, &b));
            assert!(
                (fast - slow).abs() <= 1e-6 * slow.abs().max(1.0),
                "dot n={n}: {fast} vs {slow}"
            );
            let (fast, slow) = (cosine(&a, &b), cosine_scalar(&a, &b));
            assert!(
                (fast - slow).abs() <= 1e-6,
                "cosine n={n}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn cosine_many_matches_pairwise_cosine() {
        let q: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.9).sin()).collect();
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|r| (0..64).map(|i| ((i + r) as f32 * 0.4).cos()).collect())
            .collect();
        let batch = cosine_many(&q, &rows);
        for (row, &got) in rows.iter().zip(&batch) {
            assert!((got - cosine(&q, row)).abs() <= 1e-6);
        }
        // degenerate rows score 0, like `cosine`
        let degenerate: Vec<Vec<f32>> = vec![vec![0.0; 64], vec![1.0; 3]];
        assert_eq!(cosine_many(&q, &degenerate), vec![0.0, 0.0]);
        assert_eq!(cosine_many(&[0.0; 4], &[vec![1.0; 4]]), vec![0.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 3.0];
        let b = [3.0, 1.0];
        let m = mean(&[&a, &b]).unwrap();
        assert_eq!(m, vec![2.0, 2.0]);
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
