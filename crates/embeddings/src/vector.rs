//! Dense `f32` vector arithmetic shared by the embedding models.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// `a += b`.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a *= s`.
pub fn scale(a: &mut [f32], s: f32) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Normalises `a` to unit length in place (no-op for the zero vector).
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
}

/// Mean of several vectors; `None` when the input is empty.
pub fn mean(vectors: &[&[f32]]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let mut acc = vec![0.0f32; first.len()];
    for v in vectors {
        add_assign(&mut acc, v);
    }
    scale(&mut acc, 1.0 / vectors.len() as f32);
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.3, -0.7, 0.1];
        let b = [0.6, -1.4, 0.2];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 3.0];
        let b = [3.0, 1.0];
        let m = mean(&[&a, &b]).unwrap();
        assert_eq!(m, vec![2.0, 2.0]);
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
