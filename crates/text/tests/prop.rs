//! Property-based tests for the linguistic utilities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use valentine_text::{
    abbreviate, drop_vowels, jaro, jaro_winkler, levenshtein, ngram_dice, normalized_levenshtein,
    tokenize_identifier, KeyboardTypoModel,
};

proptest! {
    #[test]
    fn levenshtein_triangle_inequality(
        a in "[a-z]{0,12}",
        b in "[a-z]{0,12}",
        c in "[a-z]{0,12}",
    ) {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn levenshtein_identity_and_symmetry(a in ".{0,15}", b in ".{0,15}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn similarity_measures_bounded(a in ".{0,20}", b in ".{0,20}") {
        for s in [
            normalized_levenshtein(&a, &b),
            jaro(&a, &b),
            jaro_winkler(&a, &b),
            ngram_dice(&a, &b, 3),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "{:?} {:?} -> {}", a, b, s);
        }
    }

    #[test]
    fn jaro_symmetry(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn tokenizer_output_is_lowercase_nonempty(name in ".{0,30}") {
        for t in tokenize_identifier(&name) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.clone(), t.to_lowercase());
        }
    }

    #[test]
    fn tokenizer_roundtrip_on_snake_case(
        tokens in proptest::collection::vec("[a-z]{1,8}", 1..5),
    ) {
        let name = tokens.join("_");
        prop_assert_eq!(tokenize_identifier(&name), tokens);
    }

    #[test]
    fn vowel_drop_is_subsequence(name in "[a-z]{0,20}") {
        let dropped = drop_vowels(&name);
        // dropped must be a subsequence of the original
        let mut it = name.chars();
        for ch in dropped.chars() {
            prop_assert!(it.any(|c| c == ch));
        }
    }

    #[test]
    fn abbreviation_never_longer(name in "[a-z_]{0,24}") {
        prop_assert!(abbreviate(&name).chars().count() <= name.chars().count().max(4));
    }

    #[test]
    fn typos_stay_close(word in "[a-z]{2,15}", seed in any::<u64>()) {
        let model = KeyboardTypoModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = model.corrupt(&word, &mut rng);
        prop_assert!(levenshtein(&word, &out) <= 2);
        let len = out.chars().count() as i64 - word.chars().count() as i64;
        prop_assert!(len.abs() <= 1, "one edit changes length by at most 1");
    }
}

// ── Optimized-kernel ↔ scalar-reference equivalence ─────────────────────
//
// Every fast path in `similarity` (ASCII two-row DP, Myers bit-parallel
// Levenshtein, scratch-buffer Jaro, hashed token Jaccard) must agree with
// the retained scalar reference. Integer kernels agree exactly; float
// kernels agree bit-for-bit because the fast paths compute the same counts
// before any float arithmetic happens. Inputs deliberately mix empty
// strings, non-ASCII text (forcing the fallback), and lengths straddling
// the Myers 64-char boundary.

use valentine_text::{
    jaccard_tokens, jaccard_tokens_scalar, jaro_scalar, jaro_winkler_scalar, levenshtein_scalar,
    monge_elkan, monge_elkan_scalar,
};

proptest! {
    #[test]
    fn levenshtein_matches_scalar_reference(a in ".{0,20}", b in ".{0,20}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein_scalar(&a, &b));
    }

    #[test]
    fn levenshtein_matches_scalar_across_myers_boundary(
        a in "[ -~]{0,80}",
        b in "[ -~]{0,80}",
    ) {
        // printable-ASCII inputs up to 80 chars cover needle lengths on
        // both sides of the 64-bit Myers word
        prop_assert_eq!(levenshtein(&a, &b), levenshtein_scalar(&a, &b));
    }

    #[test]
    fn jaro_family_matches_scalar_bit_for_bit(a in ".{0,30}", b in ".{0,30}") {
        prop_assert_eq!(jaro(&a, &b).to_bits(), jaro_scalar(&a, &b).to_bits());
        prop_assert_eq!(
            jaro_winkler(&a, &b).to_bits(),
            jaro_winkler_scalar(&a, &b).to_bits()
        );
    }

    #[test]
    fn jaccard_tokens_matches_scalar_reference(
        a in proptest::collection::vec("[a-z0-9_]{0,8}", 0..10),
        b in proptest::collection::vec("[a-z0-9_]{0,8}", 0..10),
    ) {
        prop_assert_eq!(jaccard_tokens(&a, &b), jaccard_tokens_scalar(&a, &b));
    }

    #[test]
    fn monge_elkan_matches_scalar_reference(
        a in proptest::collection::vec(".{0,10}", 0..6),
        b in proptest::collection::vec(".{0,10}", 0..6),
    ) {
        prop_assert_eq!(
            monge_elkan(&a, &b).to_bits(),
            monge_elkan_scalar(&a, &b).to_bits()
        );
    }
}
