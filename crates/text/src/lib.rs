//! Linguistic utilities for schema matching.
//!
//! Every matcher in Valentine leans on string processing somewhere:
//!
//! * [`similarity`] — the classic string similarity measures (Levenshtein,
//!   Jaro-Winkler, n-gram Dice, token Jaccard, Monge-Elkan);
//! * [`tokenize`] — identifier tokenisation (snake_case / camelCase / digit
//!   boundaries) plus abbreviation expansion, as Cupid's linguistic matching
//!   prescribes;
//! * [`noise`] — the paper's schema-noise transformations (table-name
//!   prefixing, abbreviation, vowel dropping) and the keyboard-proximity typo
//!   model used for instance noise;
//! * [`thesaurus`] — a bundled mini-WordNet: curated synonym sets with an
//!   is-a hierarchy covering the vocabulary of every dataset generator in the
//!   workspace. Cupid and COMA use it to bridge renamed columns exactly the
//!   way the original systems used WordNet.

#![warn(missing_docs)]

pub mod noise;
pub mod similarity;
pub mod thesaurus;
pub mod tokenize;

pub use noise::{abbreviate, drop_vowels, prefix_with_table, KeyboardTypoModel};
pub use similarity::{
    jaccard_tokens, jaccard_tokens_scalar, jaro, jaro_scalar, jaro_winkler, jaro_winkler_scalar,
    levenshtein, levenshtein_scalar, monge_elkan, monge_elkan_scalar, ngram_dice,
    normalized_levenshtein,
};
pub use thesaurus::Thesaurus;
pub use tokenize::{expand_abbreviation, tokenize_identifier};
