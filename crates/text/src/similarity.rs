//! String similarity measures.
//!
//! These are the primitives the matchers compose: the paper's
//! Similarity-Flooding re-implementation uses Levenshtein for initial
//! similarities, the Jaccard-Levenshtein baseline thresholds on normalised
//! Levenshtein, COMA's name matcher averages trigram/edit/synonym evidence,
//! and Cupid's linguistic matching compares token sets.
//!
//! # Kernel layout
//!
//! The edit-distance family sits in the `similarity` trace category of
//! several matchers (COMA name evidence, Jaccard-Levenshtein's O(sample²)
//! inner loop), so the common case — ASCII column names and values — takes
//! allocation-free fast paths over `&[u8]`:
//!
//! * [`levenshtein`] routes ASCII pairs whose shorter side fits in 64
//!   characters (the overwhelmingly common column-name case) through a
//!   bit-parallel Myers automaton — one word of bitwise ops per text
//!   character instead of a row of the dynamic program — and longer ASCII
//!   pairs through a two-row byte DP over reusable thread-local buffers.
//! * [`jaro`] / [`jaro_winkler`] run the same algorithm as the Unicode
//!   reference directly on bytes, with the match bookkeeping in
//!   thread-local scratch instead of three fresh `Vec`s per call.
//! * [`jaccard_tokens`] sort-merges the (small) token slices via a
//!   thread-local index buffer instead of building two `HashSet`s per call.
//!
//! Non-ASCII input falls back to the retained scalar references
//! ([`levenshtein_scalar`], [`jaro_scalar`], …), which preserve the original
//! char-by-char behaviour bit-for-bit; the ASCII paths are exact
//! re-implementations, asserted equivalent by the proptest suite in
//! `tests/prop.rs` and speed-guarded by `bench/kernels`.

use std::cell::RefCell;

use valentine_table::fxhash::hash_str;
use valentine_table::FxHashSet;

/// Reusable per-thread buffers for the allocation-free fast paths. One
/// borrow per public call; no similarity function calls another while the
/// borrow is live, so the `RefCell` can never be re-entered.
#[derive(Default)]
struct Scratch {
    /// Two-row Levenshtein DP rows.
    prev: Vec<usize>,
    curr: Vec<usize>,
    /// Myers pattern-bitmask table (256 entries, all-zero between calls).
    peq: Vec<u64>,
    /// Jaro matched-in-`b` flags.
    b_used: Vec<bool>,
    /// Jaro matched character sequences.
    matches_a: Vec<u8>,
    matches_b: Vec<u8>,
    /// Sorted distinct token hashes for [`jaccard_tokens`].
    idx_a: Vec<u64>,
    idx_b: Vec<u64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Levenshtein (edit) distance between two strings, in unicode scalar
/// values. ASCII pairs take the bit-parallel/byte-DP fast path; anything
/// else uses the classic two-row dynamic program, O(|a|·|b|) time.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    if a.is_ascii() && b.is_ascii() {
        levenshtein_ascii(a.as_bytes(), b.as_bytes())
    } else {
        levenshtein_scalar(a, b)
    }
}

/// Retained scalar reference for [`levenshtein`]: the original char-vector
/// two-row dynamic program. Kept as the equivalence and floor-speedup
/// baseline; also the live fallback for non-ASCII input.
pub fn levenshtein_scalar(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    if a_chars.is_empty() {
        return b_chars.len();
    }
    if b_chars.is_empty() {
        return a_chars.len();
    }
    // Keep the shorter string in the inner dimension.
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// ASCII dispatch: Myers when the pattern fits one machine word, two-row
/// byte DP over thread-local rows otherwise.
fn levenshtein_ascii(a: &[u8], b: &[u8]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        if pattern.len() <= 64 {
            myers64(pattern, text, &mut s.peq)
        } else {
            two_row_bytes(pattern, text, &mut s.prev, &mut s.curr)
        }
    })
}

/// Myers' bit-parallel edit distance (Hyyrö's formulation): the DP column
/// is a pair of 64-bit delta vectors updated with ~15 word ops per text
/// byte. Exact for `pattern.len() ∈ 1..=64`. `peq` must be all-zero on
/// entry and is restored to all-zero before returning.
fn myers64(pattern: &[u8], text: &[u8], peq: &mut Vec<u64>) -> usize {
    debug_assert!((1..=64).contains(&pattern.len()));
    if peq.is_empty() {
        peq.resize(256, 0);
    }
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }
    let m = pattern.len();
    let high = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    for &c in text {
        let eq = peq[c as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & high != 0 {
            score += 1;
        }
        if mh & high != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    // Restore the all-zero invariant by clearing only this pattern's rows.
    for &c in pattern {
        peq[c as usize] = 0;
    }
    score
}

/// Two-row byte DP with caller-provided (thread-local) rows — the >64-char
/// ASCII path. Same recurrence as the scalar reference, minus the per-call
/// `Vec<char>` materialisation and row allocations.
fn two_row_bytes(short: &[u8], long: &[u8], prev: &mut Vec<usize>, curr: &mut Vec<usize>) -> usize {
    prev.clear();
    prev.extend(0..=short.len());
    curr.clear();
    curr.resize(short.len() + 1, 0);
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(prev, curr);
    }
    prev[short.len()]
}

/// Levenshtein similarity in `[0, 1]`: `1 − dist / max_len`. Two empty
/// strings are identical (1.0).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = if a.is_ascii() && b.is_ascii() {
        a.len().max(b.len())
    } else {
        a.chars().count().max(b.chars().count())
    };
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`. ASCII pairs run allocation-free on bytes;
/// the result is bit-identical to [`jaro_scalar`].
pub fn jaro(a: &str, b: &str) -> f64 {
    if a.is_ascii() && b.is_ascii() {
        jaro_ascii(a.as_bytes(), b.as_bytes())
    } else {
        jaro_scalar(a, b)
    }
}

/// Retained scalar reference for [`jaro`]: the original char-vector
/// implementation, also the live non-ASCII fallback.
pub fn jaro_scalar(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// ASCII Jaro: identical algorithm to the scalar reference, with the match
/// bookkeeping in thread-local scratch. The counts it produces are the same
/// integers, so the final arithmetic is bit-for-bit equal.
fn jaro_ascii(a: &[u8], b: &[u8]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        let b_used = &mut s.b_used;
        let matches_a = &mut s.matches_a;
        let matches_b = &mut s.matches_b;
        b_used.clear();
        b_used.resize(b.len(), false);
        matches_a.clear();
        for (i, &ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            for j in lo..hi {
                if !b_used[j] && b[j] == ca {
                    b_used[j] = true;
                    matches_a.push(ca);
                    break;
                }
            }
        }
        let m = matches_a.len();
        if m == 0 {
            return 0.0;
        }
        matches_b.clear();
        matches_b.extend(
            b.iter()
                .zip(b_used.iter())
                .filter(|(_, &u)| u)
                .map(|(&c, _)| c),
        );
        let transpositions = matches_a
            .iter()
            .zip(matches_b.iter())
            .filter(|(x, y)| x != y)
            .count()
            / 2;
        let m = m as f64;
        (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
    })
}

/// Jaro-Winkler similarity: Jaro boosted by common prefix (scaling 0.1,
/// prefix capped at 4), the standard parameterisation.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    winkler_boost(jaro(a, b), a, b)
}

/// Retained scalar reference for [`jaro_winkler`], built on [`jaro_scalar`].
pub fn jaro_winkler_scalar(a: &str, b: &str) -> f64 {
    winkler_boost(jaro_scalar(a, b), a, b)
}

fn winkler_boost(j: f64, a: &str, b: &str) -> f64 {
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Character n-gram Dice coefficient: `2·|Ga ∩ Gb| / (|Ga| + |Gb|)` over the
/// multiset-collapsed n-gram sets. COMA's "trigram" matcher is
/// `ngram_dice(a, b, 3)`.
pub fn ngram_dice(a: &str, b: &str, n: usize) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    let ga = ngrams(a, n);
    let gb = ngrams(b, n);
    if ga.is_empty() && gb.is_empty() {
        return if a == b { 1.0 } else { 0.0 };
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let inter = ga.intersection(&gb).count();
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

fn ngrams(s: &str, n: usize) -> FxHashSet<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < n {
        return FxHashSet::default();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// Jaccard similarity of two token slices (as sets). Token lists here are
/// short (identifier tokens), so instead of materialising two `HashSet`s
/// per call this hashes each token once into thread-local scratch and
/// sort-merges the `u64`s: sort, dedup, then a linear merge counts the
/// intersection — no allocation, and every comparison is one integer op
/// instead of a string walk. Hash equality stands in for token equality,
/// exactly as the MinHash profile layer already assumes for `hash_str`.
pub fn jaccard_tokens<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        let ia = &mut s.idx_a;
        let ib = &mut s.idx_b;
        sorted_distinct_hashes(a, ia);
        sorted_distinct_hashes(b, ib);
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < ia.len() && j < ib.len() {
            match ia[i].cmp(&ib[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = ia.len() + ib.len() - inter;
        inter as f64 / union as f64
    })
}

/// Retained scalar reference for [`jaccard_tokens`]: the original
/// two-`HashSet` implementation.
pub fn jaccard_tokens_scalar<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: FxHashSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: FxHashSet<&str> = b.iter().map(AsRef::as_ref).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Fills `out` with the sorted, deduplicated 64-bit token hashes of `v` —
/// the token *set* as cheap-to-compare integers, no strings copied. Treats
/// hash equality as token identity, the same standing assumption the
/// MinHash profile layer makes for `hash_str` (a 2⁻⁶⁴ collision folds two
/// tokens into one).
fn sorted_distinct_hashes<S: AsRef<str>>(v: &[S], out: &mut Vec<u64>) {
    out.clear();
    out.extend(v.iter().map(|s| hash_str(s.as_ref())));
    out.sort_unstable();
    out.dedup();
}

/// Monge-Elkan similarity: for each token in `a`, the best
/// [`jaro_winkler`] match in `b`, averaged; symmetrised by taking the mean
/// of both directions. The inner Jaro-Winkler calls take the ASCII
/// scratch-buffer fast path, which is where the per-call allocations of the
/// original lived.
pub fn monge_elkan<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    monge_elkan_with(a, b, jaro_winkler)
}

/// Retained scalar reference for [`monge_elkan`], built on
/// [`jaro_winkler_scalar`].
pub fn monge_elkan_scalar<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    monge_elkan_with(a, b, jaro_winkler_scalar)
}

fn monge_elkan_with<S: AsRef<str>>(a: &[S], b: &[S], sim: fn(&str, &str) -> f64) -> f64 {
    fn directed<S: AsRef<str>>(a: &[S], b: &[S], sim: fn(&str, &str) -> f64) -> f64 {
        if a.is_empty() {
            return 0.0;
        }
        a.iter()
            .map(|ta| {
                b.iter()
                    .map(|tb| sim(ta.as_ref(), tb.as_ref()))
                    .fold(0.0, f64::max)
            })
            .sum::<f64>()
            / a.len() as f64
    }
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    (directed(a, b, sim) + directed(b, a, sim)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("country", "country"), 0);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(levenshtein("postal", "zip"), levenshtein("zip", "postal"));
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn levenshtein_fast_paths_match_scalar() {
        let cases = [
            ("", ""),
            ("a", ""),
            ("", "b"),
            ("kitten", "sitting"),
            ("customer_id", "cust_id"),
            ("x", "a-much-longer-identifier-name"),
            // >64-char pair: exercises the two-row byte DP path
            (
                "this_is_a_very_long_identifier_name_that_exceeds_sixty_four_characters_total",
                "this_is_a_very_long_identifer_nam_that_exceeds_sixty_four_characters_totale",
            ),
            // exactly-64-char pattern boundary
            (
                "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab",
                "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            ),
        ];
        for (a, b) in cases {
            assert_eq!(
                levenshtein(a, b),
                levenshtein_scalar(a, b),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let s = normalized_levenshtein("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.9444444444).abs() < 1e-6);
        assert!((jaro("dixon", "dicksonx") - 0.7666666666).abs() < 1e-6);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_fast_path_matches_scalar_bit_for_bit() {
        let cases = [
            ("", ""),
            ("a", ""),
            ("martha", "marhta"),
            ("dixon", "dicksonx"),
            ("customer_id", "cust_identifier"),
            ("prefix_a", "prefix_b"),
        ];
        for (a, b) in cases {
            assert_eq!(jaro(a, b).to_bits(), jaro_scalar(a, b).to_bits());
            assert_eq!(
                jaro_winkler(a, b).to_bits(),
                jaro_winkler_scalar(a, b).to_bits()
            );
        }
    }

    #[test]
    fn jaro_winkler_prefers_shared_prefix() {
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.9611111111).abs() < 1e-6);
        assert!(jaro_winkler("prefix_a", "prefix_b") > jaro("prefix_a", "prefix_b"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn ngram_dice_behaviour() {
        assert_eq!(ngram_dice("night", "night", 3), 1.0);
        assert!(ngram_dice("night", "nacht", 3) < 0.5);
        assert_eq!(ngram_dice("ab", "ab", 3), 1.0, "both too short but equal");
        assert_eq!(ngram_dice("ab", "cd", 3), 0.0);
        assert_eq!(ngram_dice("ab", "abcdef", 3), 0.0, "one side too short");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ngram_dice_rejects_zero_n() {
        let _ = ngram_dice("a", "b", 0);
    }

    #[test]
    fn jaccard_tokens_behaviour() {
        assert_eq!(jaccard_tokens(&["a", "b"], &["b", "a"]), 1.0);
        assert_eq!(jaccard_tokens(&["a"], &["b"]), 0.0);
        assert_eq!(jaccard_tokens::<&str>(&[], &[]), 1.0);
        let s = jaccard_tokens(&["a", "b", "c"], &["b", "c", "d"]);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_tokens_matches_scalar_with_duplicates() {
        let cases: [(&[&str], &[&str]); 5] = [
            (&["a", "a", "b"], &["b", "b", "a"]),
            (&["x"], &[]),
            (&[], &["y", "y"]),
            (&["customer", "id"], &["id", "customer", "id"]),
            (&["ä", "b"], &["b", "ä"]), // non-ASCII tokens sort fine too
        ];
        for (a, b) in cases {
            assert_eq!(
                jaccard_tokens(a, b),
                jaccard_tokens_scalar(a, b),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn monge_elkan_behaviour() {
        assert_eq!(monge_elkan(&["last", "name"], &["name", "last"]), 1.0);
        assert!(monge_elkan(&["last", "name"], &["surname"]) > 0.0);
        assert_eq!(monge_elkan::<&str>(&[], &[]), 1.0);
        assert_eq!(monge_elkan(&["a"], &[] as &[&str]), 0.0);
        // symmetry
        let ab = monge_elkan(&["postal", "code"], &["zip"]);
        let ba = monge_elkan(&["zip"], &["postal", "code"]);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_matches_scalar() {
        let a = ["customer", "id"];
        let b = ["cust", "identifier"];
        assert_eq!(
            monge_elkan(&a, &b).to_bits(),
            monge_elkan_scalar(&a, &b).to_bits()
        );
    }

    #[test]
    fn all_measures_stay_in_unit_interval() {
        let cases = [
            ("", ""),
            ("a", ""),
            ("short", "a much longer string entirely"),
            ("ID", "id"),
            ("ärger", "anger"),
        ];
        for (a, b) in cases {
            for s in [
                normalized_levenshtein(a, b),
                jaro(a, b),
                jaro_winkler(a, b),
                ngram_dice(a, b, 2),
                ngram_dice(a, b, 3),
            ] {
                assert!((0.0..=1.0).contains(&s), "{a:?} vs {b:?} gave {s}");
            }
        }
    }
}
