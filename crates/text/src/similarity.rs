//! String similarity measures.
//!
//! These are the primitives the matchers compose: the paper's
//! Similarity-Flooding re-implementation uses Levenshtein for initial
//! similarities, the Jaccard-Levenshtein baseline thresholds on normalised
//! Levenshtein, COMA's name matcher averages trigram/edit/synonym evidence,
//! and Cupid's linguistic matching compares token sets.

use valentine_table::FxHashSet;

/// Levenshtein (edit) distance between two strings, in unicode scalar
/// values. Classic two-row dynamic program, O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    if a_chars.is_empty() {
        return b_chars.len();
    }
    if b_chars.is_empty() {
        return a_chars.len();
    }
    // Keep the shorter string in the inner dimension.
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein similarity in `[0, 1]`: `1 − dist / max_len`. Two empty
/// strings are identical (1.0).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by common prefix (scaling 0.1,
/// prefix capped at 4), the standard parameterisation.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Character n-gram Dice coefficient: `2·|Ga ∩ Gb| / (|Ga| + |Gb|)` over the
/// multiset-collapsed n-gram sets. COMA's "trigram" matcher is
/// `ngram_dice(a, b, 3)`.
pub fn ngram_dice(a: &str, b: &str, n: usize) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    let ga = ngrams(a, n);
    let gb = ngrams(b, n);
    if ga.is_empty() && gb.is_empty() {
        return if a == b { 1.0 } else { 0.0 };
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let inter = ga.intersection(&gb).count();
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

fn ngrams(s: &str, n: usize) -> FxHashSet<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < n {
        return FxHashSet::default();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// Jaccard similarity of two token slices (as sets).
pub fn jaccard_tokens<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: FxHashSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: FxHashSet<&str> = b.iter().map(AsRef::as_ref).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Monge-Elkan similarity: for each token in `a`, the best
/// [`jaro_winkler`] match in `b`, averaged; symmetrised by taking the mean
/// of both directions.
pub fn monge_elkan<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    fn directed<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
        if a.is_empty() {
            return 0.0;
        }
        a.iter()
            .map(|ta| {
                b.iter()
                    .map(|tb| jaro_winkler(ta.as_ref(), tb.as_ref()))
                    .fold(0.0, f64::max)
            })
            .sum::<f64>()
            / a.len() as f64
    }
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    (directed(a, b) + directed(b, a)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("country", "country"), 0);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(levenshtein("postal", "zip"), levenshtein("zip", "postal"));
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let s = normalized_levenshtein("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.9444444444).abs() < 1e-6);
        assert!((jaro("dixon", "dicksonx") - 0.7666666666).abs() < 1e-6);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_prefers_shared_prefix() {
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.9611111111).abs() < 1e-6);
        assert!(jaro_winkler("prefix_a", "prefix_b") > jaro("prefix_a", "prefix_b"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn ngram_dice_behaviour() {
        assert_eq!(ngram_dice("night", "night", 3), 1.0);
        assert!(ngram_dice("night", "nacht", 3) < 0.5);
        assert_eq!(ngram_dice("ab", "ab", 3), 1.0, "both too short but equal");
        assert_eq!(ngram_dice("ab", "cd", 3), 0.0);
        assert_eq!(ngram_dice("ab", "abcdef", 3), 0.0, "one side too short");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ngram_dice_rejects_zero_n() {
        let _ = ngram_dice("a", "b", 0);
    }

    #[test]
    fn jaccard_tokens_behaviour() {
        assert_eq!(jaccard_tokens(&["a", "b"], &["b", "a"]), 1.0);
        assert_eq!(jaccard_tokens(&["a"], &["b"]), 0.0);
        assert_eq!(jaccard_tokens::<&str>(&[], &[]), 1.0);
        let s = jaccard_tokens(&["a", "b", "c"], &["b", "c", "d"]);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_behaviour() {
        assert_eq!(monge_elkan(&["last", "name"], &["name", "last"]), 1.0);
        assert!(monge_elkan(&["last", "name"], &["surname"]) > 0.0);
        assert_eq!(monge_elkan::<&str>(&[], &[]), 1.0);
        assert_eq!(monge_elkan(&["a"], &[] as &[&str]), 0.0);
        // symmetry
        let ab = monge_elkan(&["postal", "code"], &["zip"]);
        let ba = monge_elkan(&["zip"], &["postal", "code"]);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn all_measures_stay_in_unit_interval() {
        let cases = [
            ("", ""),
            ("a", ""),
            ("short", "a much longer string entirely"),
            ("ID", "id"),
            ("ärger", "anger"),
        ];
        for (a, b) in cases {
            for s in [
                normalized_levenshtein(a, b),
                jaro(a, b),
                jaro_winkler(a, b),
                ngram_dice(a, b, 2),
                ngram_dice(a, b, 3),
            ] {
                assert!((0.0..=1.0).contains(&s), "{a:?} vs {b:?} gave {s}");
            }
        }
    }
}
