//! Identifier tokenisation and abbreviation expansion.
//!
//! Cupid's linguistic matching starts by *normalising* element names:
//! splitting them into word tokens, lowercasing, and expanding known
//! abbreviations. The same tokenizer feeds COMA's name matcher and the
//! embedding lookups.

/// Splits an identifier into lowercase word tokens at `_`, `-`, whitespace,
/// `.`, `/`, camelCase humps, and letter/digit boundaries.
///
/// ```
/// use valentine_text::tokenize_identifier;
/// assert_eq!(tokenize_identifier("lastName"), vec!["last", "name"]);
/// assert_eq!(tokenize_identifier("postal_code2"), vec!["postal", "code", "2"]);
/// assert_eq!(tokenize_identifier("ING.owner-team"), vec!["ing", "owner", "team"]);
/// ```
pub fn tokenize_identifier(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev: Option<char> = None;

    let flush = |current: &mut String, tokens: &mut Vec<String>| {
        if !current.is_empty() {
            tokens.push(std::mem::take(current).to_lowercase());
        }
    };

    for ch in name.chars() {
        if ch == '_' || ch == '-' || ch == '.' || ch == '/' || ch.is_whitespace() {
            flush(&mut current, &mut tokens);
            prev = None;
            continue;
        }
        if let Some(p) = prev {
            let camel_hump = p.is_lowercase() && ch.is_uppercase();
            let digit_boundary = p.is_ascii_digit() != ch.is_ascii_digit();
            if camel_hump || digit_boundary {
                flush(&mut current, &mut tokens);
            }
        }
        current.push(ch);
        prev = Some(ch);
    }
    flush(&mut current, &mut tokens);
    tokens
}

/// Known schema abbreviations and their expansions. This is the dictionary
/// Cupid-style linguistic normalisation consults; it also covers the
/// abbreviations our own schema-noise generator produces.
pub const ABBREVIATIONS: &[(&str, &str)] = &[
    ("abbr", "abbreviation"),
    ("acct", "account"),
    ("addr", "address"),
    ("amt", "amount"),
    ("app", "application"),
    ("apt", "apartment"),
    ("avg", "average"),
    ("bal", "balance"),
    ("cat", "category"),
    ("cd", "code"),
    ("cnt", "count"),
    ("cntr", "country"),
    ("cntry", "country"),
    ("co", "company"),
    ("ctry", "country"),
    ("cty", "city"),
    ("cust", "customer"),
    ("dept", "department"),
    ("desc", "description"),
    ("descr", "description"),
    ("dob", "date of birth"),
    ("dt", "date"),
    ("emp", "employee"),
    ("fname", "first name"),
    ("gend", "gender"),
    ("img", "image"),
    ("lang", "language"),
    ("lname", "last name"),
    ("loc", "location"),
    ("mgr", "manager"),
    ("mid", "middle"),
    ("nbr", "number"),
    ("no", "number"),
    ("num", "number"),
    ("org", "organization"),
    ("perf", "performance"),
    ("ph", "phone"),
    ("pos", "position"),
    ("prod", "product"),
    ("qty", "quantity"),
    ("ref", "reference"),
    ("sal", "salary"),
    ("st", "state"),
    ("tel", "telephone"),
    ("tm", "team"),
    ("ttl", "title"),
    ("txn", "transaction"),
    ("val", "value"),
    ("yr", "year"),
    ("zip", "postal code"),
];

/// Expands a single lowercase token if it is a known abbreviation, otherwise
/// returns it unchanged.
pub fn expand_abbreviation(token: &str) -> &str {
    match ABBREVIATIONS.binary_search_by(|(k, _)| k.cmp(&token)) {
        Ok(i) => ABBREVIATIONS[i].1,
        Err(_) => token,
    }
}

/// Tokenises and expands abbreviations in one pass — the "normalisation"
/// step of Cupid's linguistic matching. Expansions that are multi-word
/// ("dob" → "date of birth") contribute each word as its own token.
pub fn normalize_tokens(name: &str) -> Vec<String> {
    tokenize_identifier(name)
        .iter()
        .flat_map(|t| {
            expand_abbreviation(t)
                .split(' ')
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_snake_and_kebab_case() {
        assert_eq!(tokenize_identifier("last_name"), vec!["last", "name"]);
        assert_eq!(tokenize_identifier("owner-team"), vec!["owner", "team"]);
    }

    #[test]
    fn splits_camel_case() {
        assert_eq!(
            tokenize_identifier("creditRating"),
            vec!["credit", "rating"]
        );
        assert_eq!(tokenize_identifier("NetWorth"), vec!["net", "worth"]);
        // An all-caps acronym stays one token.
        assert_eq!(tokenize_identifier("ID"), vec!["id"]);
    }

    #[test]
    fn splits_digit_boundaries() {
        assert_eq!(tokenize_identifier("address1"), vec!["address", "1"]);
        assert_eq!(tokenize_identifier("2ndLine"), vec!["2", "nd", "line"]);
    }

    #[test]
    fn empty_and_separator_only() {
        assert!(tokenize_identifier("").is_empty());
        assert!(tokenize_identifier("___").is_empty());
    }

    #[test]
    fn abbreviation_table_is_sorted() {
        // binary_search relies on sortedness; guard it.
        for w in ABBREVIATIONS.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn expansion_hits_and_misses() {
        assert_eq!(expand_abbreviation("addr"), "address");
        assert_eq!(expand_abbreviation("zip"), "postal code");
        assert_eq!(expand_abbreviation("banana"), "banana");
    }

    #[test]
    fn normalize_expands_multiword() {
        assert_eq!(
            normalize_tokens("cust_dob"),
            vec!["customer", "date", "of", "birth"]
        );
        assert_eq!(normalize_tokens("zipCd"), vec!["postal", "code", "code"]);
    }
}
