//! A bundled mini-WordNet.
//!
//! Cupid uses WordNet as its thesaurus and COMA ships synonym tables; neither
//! resource can be redistributed wholesale here, so we bundle a curated
//! thesaurus: ~70 synonym sets plus an is-a (hypernym) layer, covering the
//! vocabulary that the workspace's dataset generators emit. The behavioural
//! contract is the same as the paper's setup: schema-level matchers can
//! bridge *semantic* renames ("partner" → "spouse") exactly when a thesaurus
//! path exists, and get no help for arbitrary or domain-specific names.

use std::sync::OnceLock;

use valentine_table::FxHashMap;

use crate::tokenize::tokenize_identifier;

/// Synonym sets: every phrase in one row denotes the same concept.
const SYNSETS: &[&[&str]] = &[
    &["last name", "surname", "family name"],
    &["first name", "given name", "forename"],
    &["middle initial", "middle name"],
    &["phone", "telephone", "phone number", "telephone number"],
    &["postal code", "zip", "zip code", "postcode"],
    &["country", "nation"],
    &["city", "town", "municipality"],
    &["state", "province", "region"],
    &["gender", "sex"],
    &["income", "salary", "earnings", "wage"],
    &["employer", "company", "organization", "firm"],
    &["spouse", "partner", "husband", "wife"],
    &["address", "street address"],
    &["residence", "home", "domicile"],
    &["birth date", "date of birth", "born", "birthdate"],
    &["birth place", "place of birth", "birthplace"],
    &["citizenship", "nationality"],
    &["genre", "style", "music style"],
    &["record label", "label"],
    &["artist", "singer", "performer", "musician"],
    &["net worth", "wealth"],
    &["occupation", "profession", "job"],
    &["manager", "supervisor", "boss"],
    &["department", "division"],
    &["team", "squad", "crew"],
    &["application", "software", "program"],
    &["task", "ticket", "issue", "work item"],
    &["sprint", "iteration"],
    &["epic", "initiative"],
    &["status", "condition"],
    &["priority", "importance", "severity"],
    &["name", "title"],
    &["id", "identifier"],
    &["assay", "experiment", "test"],
    &["organism", "species"],
    &["cell type", "cell line"],
    &["rating", "score", "grade"],
    &["children", "kids", "offspring"],
    &["car", "vehicle", "automobile"],
    &["marital status", "civil status"],
    &["owner", "holder", "proprietor"],
    &["hardware", "machine", "server"],
    &["award", "prize", "honor"],
    &["album", "record"],
    &["song", "track", "tune"],
    &["movie", "film"],
    &["actor", "cast"],
    &["director", "filmmaker"],
    &["price", "cost", "amount"],
    &["beer", "brew"],
    &["book", "publication"],
    &["author", "writer"],
    &["height", "stature"],
    &["confidence", "certainty"],
    &["start", "begin", "from"],
    &["end", "finish", "until"],
    &["created", "added"],
    &["updated", "modified", "changed"],
    &["assignee", "assigned to"],
    &["reporter", "creator"],
    &["website", "url", "homepage"],
    &["description", "details", "notes"],
    &["age", "years"],
    &["email", "mail", "e mail"],
    &["credit rating", "creditworthiness"],
    &["tissue", "organ"],
    &["target", "goal"],
    &["location", "place", "site"],
    &["money", "currency", "funds"],
    &["contact", "reachability"],
    &["work", "creation", "piece"],
    &["family", "relatives", "kin"],
    &["parents", "mother and father"],
    &["date", "day"],
    &["instrument", "musical instrument"],
];

/// Hypernym (is-a) edges between synsets, identified by a representative
/// member: (`child`, `parent`).
const HYPERNYMS: &[(&str, &str)] = &[
    ("last name", "name"),
    ("first name", "name"),
    ("middle initial", "name"),
    ("city", "location"),
    ("country", "location"),
    ("state", "location"),
    ("address", "location"),
    ("residence", "location"),
    ("birth place", "location"),
    ("income", "money"),
    ("net worth", "money"),
    ("price", "money"),
    ("phone", "contact"),
    ("email", "contact"),
    ("website", "contact"),
    ("movie", "work"),
    ("song", "work"),
    ("album", "work"),
    ("book", "work"),
    ("spouse", "family"),
    ("parents", "family"),
    ("children", "family"),
    ("artist", "occupation"),
    ("actor", "occupation"),
    ("director", "occupation"),
    ("author", "occupation"),
    ("manager", "occupation"),
    ("birth date", "date"),
    ("created", "date"),
    ("updated", "date"),
    ("sprint", "task"),
    ("epic", "task"),
];

/// A thesaurus: synonym sets plus an is-a hierarchy, queried with
/// similarity scores the way Cupid queries WordNet.
#[derive(Debug)]
pub struct Thesaurus {
    synsets: Vec<Vec<String>>,
    phrase_to_synset: FxHashMap<String, usize>,
    parent: Vec<Option<usize>>,
}

impl Thesaurus {
    /// Builds a thesaurus from synonym sets and hypernym edges. Each phrase
    /// may appear in at most one synset; later duplicates are ignored.
    pub fn new(synsets: &[&[&str]], hypernyms: &[(&str, &str)]) -> Thesaurus {
        let mut sets: Vec<Vec<String>> = Vec::with_capacity(synsets.len());
        let mut phrase_to_synset = FxHashMap::default();
        for set in synsets {
            let id = sets.len();
            let mut owned = Vec::with_capacity(set.len());
            for phrase in *set {
                let norm = normalize_phrase(phrase);
                phrase_to_synset.entry(norm.clone()).or_insert(id);
                owned.push(norm);
            }
            sets.push(owned);
        }
        let mut parent = vec![None; sets.len()];
        for (child, par) in hypernyms {
            let c = phrase_to_synset.get(&normalize_phrase(child));
            let p = phrase_to_synset.get(&normalize_phrase(par));
            if let (Some(&c), Some(&p)) = (c, p) {
                if c != p {
                    parent[c] = Some(p);
                }
            }
        }
        Thesaurus {
            synsets: sets,
            phrase_to_synset,
            parent,
        }
    }

    /// The bundled thesaurus instance.
    pub fn builtin() -> &'static Thesaurus {
        static BUILTIN: OnceLock<Thesaurus> = OnceLock::new();
        BUILTIN.get_or_init(|| Thesaurus::new(SYNSETS, HYPERNYMS))
    }

    /// Number of synonym sets.
    pub fn len(&self) -> usize {
        self.synsets.len()
    }

    /// True when the thesaurus holds no synsets.
    pub fn is_empty(&self) -> bool {
        self.synsets.is_empty()
    }

    /// The synset id of a phrase, if known. Phrases are normalised
    /// (tokenised, lowercased, abbreviations *not* expanded — expansion is
    /// the tokenizer's job).
    pub fn synset_of(&self, phrase: &str) -> Option<usize> {
        self.phrase_to_synset
            .get(&normalize_phrase(phrase))
            .copied()
    }

    /// All synonyms of a phrase (including itself), or an empty slice if the
    /// phrase is unknown.
    pub fn synonyms(&self, phrase: &str) -> &[String] {
        self.synset_of(phrase)
            .map(|id| self.synsets[id].as_slice())
            .unwrap_or(&[])
    }

    /// True when the two phrases share a synset.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        match (self.synset_of(a), self.synset_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// WordNet-style semantic similarity in `[0, 1]`:
    ///
    /// * identical normalised phrases → 1.0
    /// * same synset → 0.95
    /// * parent/child synsets → 0.8
    /// * siblings (same parent) → 0.7
    /// * grandparent path → 0.55
    /// * otherwise / unknown phrases → 0.0
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let na = normalize_phrase(a);
        let nb = normalize_phrase(b);
        if na == nb && !na.is_empty() {
            return 1.0;
        }
        let (sa, sb) = match (
            self.phrase_to_synset.get(&na),
            self.phrase_to_synset.get(&nb),
        ) {
            (Some(&x), Some(&y)) => (x, y),
            _ => return 0.0,
        };
        if sa == sb {
            return 0.95;
        }
        let pa = self.parent[sa];
        let pb = self.parent[sb];
        if pa == Some(sb) || pb == Some(sa) {
            return 0.8;
        }
        if pa.is_some() && pa == pb {
            return 0.7;
        }
        // grandparent chains
        let ga = pa.and_then(|p| self.parent[p]);
        let gb = pb.and_then(|p| self.parent[p]);
        if ga == Some(sb) || gb == Some(sa) || (ga.is_some() && ga == gb) {
            return 0.55;
        }
        0.0
    }
}

/// Normalises a phrase for thesaurus lookup: identifier-tokenise and join
/// with single spaces ("Last_Name" → "last name").
fn normalize_phrase(phrase: &str) -> String {
    tokenize_identifier(phrase).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_loads_and_is_nonempty() {
        let t = Thesaurus::builtin();
        assert!(t.len() > 50);
        assert!(!t.is_empty());
    }

    #[test]
    fn synonyms_are_found_across_formattings() {
        let t = Thesaurus::builtin();
        assert!(t.are_synonyms("last_name", "surname"));
        assert!(t.are_synonyms("LastName", "Family_Name"));
        assert!(t.are_synonyms("partner", "spouse"));
        assert!(t.are_synonyms("zip", "postal_code"));
        assert!(!t.are_synonyms("zip", "surname"));
        assert!(!t.are_synonyms("quux", "spouse"));
    }

    #[test]
    fn similarity_tiers() {
        let t = Thesaurus::builtin();
        assert_eq!(t.similarity("spouse", "spouse"), 1.0);
        assert_eq!(t.similarity("Spouse", "spouse"), 1.0);
        assert_eq!(t.similarity("spouse", "partner"), 0.95);
        // parent/child: city is-a location
        assert_eq!(t.similarity("city", "location"), 0.8);
        // siblings: city and country are both locations
        assert_eq!(t.similarity("city", "country"), 0.7);
        // unrelated
        assert_eq!(t.similarity("city", "salary"), 0.0);
        // unknown words
        assert_eq!(t.similarity("qwert", "asdfg"), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let t = Thesaurus::builtin();
        for (a, b) in [
            ("city", "location"),
            ("income", "price"),
            ("spouse", "children"),
            ("movie", "film"),
        ] {
            assert_eq!(t.similarity(a, b), t.similarity(b, a), "{a} vs {b}");
        }
    }

    #[test]
    fn synonym_listing() {
        let t = Thesaurus::builtin();
        let syns = t.synonyms("surname");
        assert!(syns.contains(&"last name".to_string()));
        assert!(t.synonyms("no_such_word").is_empty());
    }

    #[test]
    fn custom_thesaurus() {
        let t = Thesaurus::new(
            &[&["alpha", "first"], &["omega", "last"], &["letter"]],
            &[("alpha", "letter"), ("omega", "letter")],
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.similarity("alpha", "first"), 0.95);
        assert_eq!(t.similarity("alpha", "omega"), 0.7);
        assert_eq!(t.similarity("alpha", "letter"), 0.8);
    }

    #[test]
    fn duplicate_phrases_keep_first_synset() {
        let t = Thesaurus::new(&[&["x", "y"], &["y", "z"]], &[]);
        assert!(t.are_synonyms("x", "y"));
        // "y" stayed in the first synset, so y/z are not synonyms
        assert!(!t.are_synonyms("y", "z"));
    }

    #[test]
    fn ing_and_wikidata_vocabulary_covered() {
        let t = Thesaurus::builtin();
        assert!(t.are_synonyms("team", "squad"));
        assert!(t.are_synonyms("application", "software"));
        assert!(t.are_synonyms("citizenship", "nationality"));
        assert!(t.are_synonyms("genre", "music_style"));
        assert!(t.are_synonyms("record_label", "label"));
    }
}
