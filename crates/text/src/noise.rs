//! Noise transformations from the Valentine fabrication process.
//!
//! *Noise in schemata* (Section IV of the paper) combines three rules:
//! prefixing column names with the table name, abbreviating them, and
//! dropping vowels. *Noise in data* inserts random typos based on keyboard
//! proximity into string values.

use rand::Rng;

/// Rule (i): prefix a column name with its table name — "common practice in
/// DB design".
pub fn prefix_with_table(table: &str, column: &str) -> String {
    format!("{table}_{column}")
}

/// Rule (iii): drop all vowels except a leading one ("salary" → "slry",
/// "income" → "incm"). Keeping a leading vowel follows the common manual
/// abbreviation convention and keeps names pronounceable-ish.
pub fn drop_vowels(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let is_vowel = matches!(ch.to_ascii_lowercase(), 'a' | 'e' | 'i' | 'o' | 'u');
        if !is_vowel || i == 0 {
            out.push(ch);
        }
    }
    out
}

/// Rule (ii): abbreviate a column name. Multi-token names collapse to the
/// first letters of their tokens ("last_name" → "ln"); single tokens keep a
/// consonant skeleton of at most four characters ("country" → "cntr").
pub fn abbreviate(name: &str) -> String {
    let tokens = crate::tokenize::tokenize_identifier(name);
    match tokens.len() {
        0 => String::new(),
        1 => {
            let skeleton = drop_vowels(&tokens[0]);
            skeleton.chars().take(4).collect()
        }
        _ => tokens.iter().filter_map(|t| t.chars().next()).collect(),
    }
}

/// QWERTY keyboard adjacency, used to generate realistic typos ("similar to
/// eTuner", per the paper). Only lowercase letters participate; other
/// characters are never perturbed.
const KEYBOARD_ROWS: [&str; 3] = ["qwertyuiop", "asdfghjkl", "zxcvbnm"];

/// Returns the keyboard neighbours of a lowercase letter (same row left and
/// right plus the closest keys on adjacent rows).
pub fn keyboard_neighbors(ch: char) -> Vec<char> {
    let mut out = Vec::new();
    for (r, row) in KEYBOARD_ROWS.iter().enumerate() {
        if let Some(i) = row.find(ch) {
            let row_chars: Vec<char> = row.chars().collect();
            if i > 0 {
                out.push(row_chars[i - 1]);
            }
            if i + 1 < row_chars.len() {
                out.push(row_chars[i + 1]);
            }
            // Staggered adjacency to the rows above and below.
            for adj in [r.wrapping_sub(1), r + 1] {
                if let Some(other) = KEYBOARD_ROWS.get(adj) {
                    let other_chars: Vec<char> = other.chars().collect();
                    for j in [i.saturating_sub(1), i] {
                        if let Some(&c) = other_chars.get(j) {
                            if !out.contains(&c) {
                                out.push(c);
                            }
                        }
                    }
                }
            }
            break;
        }
    }
    out
}

/// The instance-noise typo model: given a string and an RNG, applies one of
/// four edit operations at a random position — substitution by a keyboard
/// neighbour, insertion of a neighbour, deletion, or transposition.
#[derive(Debug, Clone, Copy)]
pub struct KeyboardTypoModel {
    /// Probability that a given value receives a typo at all.
    pub typo_probability: f64,
}

impl Default for KeyboardTypoModel {
    fn default() -> Self {
        KeyboardTypoModel {
            typo_probability: 0.5,
        }
    }
}

impl KeyboardTypoModel {
    /// Creates a model with the given per-value typo probability.
    pub fn new(typo_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&typo_probability),
            "probability must be in [0, 1]"
        );
        KeyboardTypoModel { typo_probability }
    }

    /// Possibly injects one typo into `s`. Strings shorter than 2 characters
    /// are returned unchanged (a typo would destroy them entirely).
    pub fn corrupt<R: Rng>(&self, s: &str, rng: &mut R) -> String {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < 2 || !rng.gen_bool(self.typo_probability) {
            return s.to_string();
        }
        // Pick a perturbable position: prefer letters with known neighbours.
        let letter_positions: Vec<usize> = chars
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_ascii_lowercase())
            .map(|(i, _)| i)
            .collect();
        let pos = if letter_positions.is_empty() {
            rng.gen_range(0..chars.len())
        } else {
            letter_positions[rng.gen_range(0..letter_positions.len())]
        };

        let mut out = chars.clone();
        match rng.gen_range(0..4u8) {
            0 => {
                // substitution by keyboard neighbour
                let neighbors = keyboard_neighbors(out[pos].to_ascii_lowercase());
                if let Some(&n) = neighbors.first() {
                    let pick = neighbors[rng.gen_range(0..neighbors.len())];
                    out[pos] = if pick == out[pos] { n } else { pick };
                } else {
                    out[pos] = 'x';
                }
            }
            1 => {
                // insertion of a keyboard neighbour (or duplicate)
                let neighbors = keyboard_neighbors(out[pos].to_ascii_lowercase());
                let ins = neighbors.first().copied().unwrap_or(out[pos]);
                out.insert(pos, ins);
            }
            2 => {
                // deletion
                out.remove(pos);
            }
            _ => {
                // transposition with the next character
                if pos + 1 < out.len() {
                    out.swap(pos, pos + 1);
                } else if pos > 0 {
                    out.swap(pos - 1, pos);
                }
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prefixing() {
        assert_eq!(prefix_with_table("clients", "name"), "clients_name");
    }

    #[test]
    fn vowel_dropping() {
        assert_eq!(drop_vowels("salary"), "slry");
        assert_eq!(drop_vowels("income"), "incm");
        assert_eq!(drop_vowels("a"), "a");
        assert_eq!(drop_vowels(""), "");
        assert_eq!(drop_vowels("bcd"), "bcd");
    }

    #[test]
    fn abbreviation_rules() {
        assert_eq!(abbreviate("last_name"), "ln");
        assert_eq!(abbreviate("number_credit_cards"), "ncc");
        assert_eq!(abbreviate("country"), "cntr");
        assert_eq!(abbreviate("creditRating"), "cr");
        assert_eq!(abbreviate(""), "");
    }

    #[test]
    fn keyboard_neighbors_sane() {
        let n = keyboard_neighbors('s');
        assert!(n.contains(&'a'));
        assert!(n.contains(&'d'));
        assert!(n.contains(&'w'));
        assert!(keyboard_neighbors('7').is_empty());
        assert!(!keyboard_neighbors('q').is_empty());
    }

    #[test]
    fn typo_model_probability_zero_is_identity() {
        let model = KeyboardTypoModel::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(model.corrupt("amsterdam", &mut rng), "amsterdam");
    }

    #[test]
    fn typo_model_probability_one_always_edits() {
        let model = KeyboardTypoModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut changed = 0;
        for _ in 0..100 {
            let out = model.corrupt("amsterdam", &mut rng);
            if out != "amsterdam" {
                changed += 1;
            }
            // edit distance of a single typo is at most 2 (transposition)
            assert!(crate::similarity::levenshtein("amsterdam", &out) <= 2);
        }
        assert!(
            changed >= 95,
            "single typos should nearly always change the string"
        );
    }

    #[test]
    fn typo_model_leaves_short_strings_alone() {
        let model = KeyboardTypoModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(model.corrupt("a", &mut rng), "a");
        assert_eq!(model.corrupt("", &mut rng), "");
    }

    #[test]
    fn typo_model_deterministic_under_seed() {
        let model = KeyboardTypoModel::default();
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..20)
                .map(|_| model.corrupt("rotterdam", &mut rng))
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..20)
                .map(|_| model.corrupt("rotterdam", &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn typo_model_rejects_bad_probability() {
        let _ = KeyboardTypoModel::new(1.5);
    }
}
