//! Shared plumbing for the benchmark harness.
//!
//! The `reproduce` binary regenerates every figure and table of the paper;
//! the criterion benches in `benches/` measure single representative runs
//! per method. Both use the helpers here so "what counts as Figure 4's
//! workload" is defined exactly once.

use valentine_core::grids::GridScale;
use valentine_core::prelude::*;
use valentine_core::reports::{figure_row, render_figure, render_figure_whiskers, FigureCell};
use valentine_core::{Corpus, CorpusConfig, Runner, RunnerConfig};

/// Harness scale selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny tables, 1 fabricated pair per scenario — smoke runs.
    Tiny,
    /// Small tables, 4 pairs per scenario per source — the default.
    Small,
    /// The paper's full 553-pair corpus at published table sizes.
    Paper,
}

impl Scale {
    /// Parses `tiny` / `small` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The corpus configuration of this scale.
    pub fn corpus_config(self) -> CorpusConfig {
        match self {
            Scale::Tiny => CorpusConfig::tiny(),
            Scale::Small => CorpusConfig::small(),
            Scale::Paper => CorpusConfig::paper(),
        }
    }

    /// The grid scale of this scale.
    pub fn grid_scale(self) -> GridScale {
        match self {
            Scale::Paper => GridScale::Paper,
            _ => GridScale::Small,
        }
    }
}

/// The schema-based methods of Figure 4.
pub const SCHEMA_METHODS: [MatcherKind; 3] = [
    MatcherKind::Cupid,
    MatcherKind::SimilarityFlooding,
    MatcherKind::ComaSchema,
];

/// The instance-based methods of Figure 5.
pub const INSTANCE_METHODS: [MatcherKind; 4] = [
    MatcherKind::DistributionDist1,
    MatcherKind::DistributionDist2,
    MatcherKind::ComaInstance,
    MatcherKind::JaccardLevenshtein,
];

/// The hybrid methods of Figure 6.
pub const HYBRID_METHODS: [MatcherKind; 2] = [MatcherKind::EmbDI, MatcherKind::SemProp];

/// Everything except SemProp (which needs the ontology-compatible source).
pub const NON_SEMPROP_METHODS: [MatcherKind; 8] = [
    MatcherKind::Cupid,
    MatcherKind::SimilarityFlooding,
    MatcherKind::ComaSchema,
    MatcherKind::ComaInstance,
    MatcherKind::DistributionDist1,
    MatcherKind::DistributionDist2,
    MatcherKind::EmbDI,
    MatcherKind::JaccardLevenshtein,
];

/// Runs a method set over a pair slice and returns the runner.
pub fn run_methods(
    pairs: &[DatasetPair],
    methods: &[MatcherKind],
    scale: Scale,
    threads: usize,
) -> Runner {
    let owned: Vec<DatasetPair> = pairs.to_vec();
    Runner::run(
        &owned,
        &RunnerConfig {
            methods: methods.to_vec(),
            scale: scale.grid_scale(),
            threads,
            ..RunnerConfig::default()
        },
    )
}

/// Builds the corpus at the given scale.
pub fn build_corpus(scale: Scale) -> Corpus {
    Corpus::build(&scale.corpus_config())
}

/// A single representative fabricated pair per scenario for the criterion
/// micro-benches (TPC-DI source, tiny size, noisy schema).
pub fn bench_pair(scenario: ScenarioKind) -> DatasetPair {
    let table = valentine_core::datasets::tpcdi::prospect(SizeClass::Tiny, 42);
    let spec = match scenario {
        ScenarioKind::Unionable => {
            ScenarioSpec::unionable(0.5, SchemaNoise::Noisy, InstanceNoise::Verbatim)
        }
        ScenarioKind::ViewUnionable => {
            ScenarioSpec::view_unionable(0.5, SchemaNoise::Noisy, InstanceNoise::Verbatim)
        }
        ScenarioKind::Joinable => ScenarioSpec::joinable(0.3, false, SchemaNoise::Noisy),
        ScenarioKind::SemanticallyJoinable => {
            ScenarioSpec::semantically_joinable(0.3, false, SchemaNoise::Noisy)
        }
    };
    fabricate_pair(&table, &spec, 7).expect("fabrication cannot fail on generated tables")
}

/// Renders one figure from a runner with a filter — shared by the binary
/// and the integration tests.
pub fn figure(
    runner: &Runner,
    title: &str,
    methods: &[MatcherKind],
    predicate: impl Fn(&ExperimentRecord) -> bool + Copy,
) -> (String, Vec<FigureCell>) {
    let mut cells = Vec::new();
    for &m in methods {
        cells.extend(figure_row(runner, m, predicate));
    }
    let mut text = render_figure(title, &cells);
    text.push('\n');
    text.push_str(&render_figure_whiskers(
        "whiskers (Recall@GT, 0..1)",
        &cells,
    ));
    (text, cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn bench_pairs_exist_for_all_scenarios() {
        for s in ScenarioKind::ALL {
            let p = bench_pair(s);
            assert_eq!(p.scenario, s);
            assert!(p.ground_truth_size() > 0);
        }
    }

    #[test]
    fn method_groups_cover_all_nine() {
        let mut all: Vec<MatcherKind> = SCHEMA_METHODS
            .iter()
            .chain(&INSTANCE_METHODS)
            .chain(&HYBRID_METHODS)
            .chain(&NON_SEMPROP_METHODS)
            .copied()
            .collect();
        all.sort_by_key(|m| m.label());
        all.dedup();
        assert_eq!(all.len(), MatcherKind::ALL.len());
    }
}
