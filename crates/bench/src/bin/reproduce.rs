//! Regenerates every figure and table of the Valentine paper.
//!
//! ```text
//! reproduce [fig4|fig5|fig6|fig7|table1|table3|table4|all]
//!           [--scale tiny|small|paper] [--threads N] [--out DIR]
//! ```
//!
//! Scale `small` (default) runs the full pipeline on reduced table sizes
//! and a reduced fabrication fan-out; `paper` uses the published sizes and
//! the full 553-pair corpus (hours of compute). Shapes — which method wins,
//! orderings, crossovers — are preserved across scales; absolute numbers
//! are not expected to match the paper's testbed.

use std::io::Write as _;
use std::time::Instant;

use valentine_bench::{
    build_corpus, figure, run_methods, Scale, INSTANCE_METHODS, NON_SEMPROP_METHODS, SCHEMA_METHODS,
};
use valentine_core::matchers::registry::match_type_coverage;
use valentine_core::prelude::*;
use valentine_core::reports::{figure_tsv, records_tsv, render_error_summary, render_recall_table};
use valentine_core::Runner;

struct Options {
    command: String,
    scale: Scale,
    threads: usize,
    out_dir: Option<String>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        command: "all".to_string(),
        scale: Scale::Small,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        out_dir: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = Scale::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| die("expected --scale tiny|small|paper"));
            }
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("expected --threads N"));
            }
            "--out" => {
                i += 1;
                opts.out_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --out DIR")),
                );
            }
            cmd if !cmd.starts_with('-') => opts.command = cmd.to_string(),
            other => die(&format!("unknown option `{other}`")),
        }
        i += 1;
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("reproduce: {msg}");
    std::process::exit(2);
}

fn write_out(out_dir: &Option<String>, name: &str, content: &str) {
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = format!("{dir}/{name}");
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(content.as_bytes()).expect("write output file");
        println!("  [wrote {path}]");
    }
}

fn main() {
    let opts = parse_args();
    let started = Instant::now();
    println!(
        "valentine reproduce — command={} scale={:?} threads={}",
        opts.command, opts.scale, opts.threads
    );

    let fabricated_runner = std::cell::OnceCell::<Runner>::new();
    let corpus = std::cell::OnceCell::new();
    let get_corpus = || corpus.get_or_init(|| build_corpus(opts.scale));

    // Runs schema+instance+EmbDI methods over the fabricated slice once and
    // reuses the records across fig4/fig5/fig6/table4.
    let get_fabricated_runner = || {
        fabricated_runner.get_or_init(|| {
            let c = get_corpus();
            let pairs: Vec<DatasetPair> = c.fabricated().into_iter().cloned().collect();
            println!(
                "  running {} methods on {} fabricated pairs …",
                NON_SEMPROP_METHODS.len(),
                pairs.len()
            );
            run_methods(&pairs, &NON_SEMPROP_METHODS, opts.scale, opts.threads)
        })
    };

    let run = |cmd: &str| -> bool { opts.command == cmd || opts.command == "all" };

    if run("table1") {
        println!("\n== Table I: match-type coverage ==");
        println!(
            "{:<22} {:>9} {:>7} {:>9} {:>9} {:>13} {:>11}",
            "method", "attr.ovl", "val.ovl", "sem.ovl", "data type", "distribution", "embeddings"
        );
        for (label, flags) in match_type_coverage() {
            print!("{label:<22}");
            for (i, f) in flags.iter().enumerate() {
                let w = [9, 7, 9, 9, 13, 11][i];
                print!(" {:>w$}", if *f { "x" } else { "" }, w = w);
            }
            println!();
        }
    }

    if run("fig4") {
        let runner = get_fabricated_runner();
        let (text, cells) = figure(
            runner,
            "Figure 4: schema-based methods, noisy schemata (min/median/max Recall@GT)",
            &SCHEMA_METHODS,
            |r| r.noisy_schema,
        );
        println!("\n{text}");
        println!("paper shape: all medians < ~0.6 under schema noise; Cupid slightly worst.");
        write_out(&opts.out_dir, "fig4.tsv", &figure_tsv(&cells));

        let (text, _) = figure(
            runner,
            "Figure 4 (control): schema-based methods, verbatim schemata",
            &SCHEMA_METHODS,
            |r| !r.noisy_schema,
        );
        println!("\n{text}");
        println!("paper shape: near-perfect recall with verbatim attribute names.");
    }

    if run("fig5") {
        let runner = get_fabricated_runner();
        let (text, cells) = figure(
            runner,
            "Figure 5a: instance-based methods, verbatim instances",
            &INSTANCE_METHODS,
            |r| !r.noisy_instances,
        );
        println!("\n{text}");
        write_out(&opts.out_dir, "fig5_verbatim.tsv", &figure_tsv(&cells));
        let (text, cells) = figure(
            runner,
            "Figure 5b: instance-based methods, noisy instances",
            &INSTANCE_METHODS,
            |r| r.noisy_instances,
        );
        println!("\n{text}");
        println!(
            "paper shape: joinable easy; view-unionable ≪ unionable; sem-joinable < joinable;"
        );
        println!("COMA most effective; JL baseline often ≥ Distribution-based.");
        write_out(&opts.out_dir, "fig5_noisy.tsv", &figure_tsv(&cells));
    }

    if run("fig6") {
        let runner = get_fabricated_runner();
        let (text, cells) = figure(
            runner,
            "Figure 6a: EmbDI on all fabricated sources (verbatim instances & schemata)",
            &[MatcherKind::EmbDI],
            |r| !r.noisy_instances && !r.noisy_schema,
        );
        println!("\n{text}");
        write_out(
            &opts.out_dir,
            "fig6_embdi_verbatim.tsv",
            &figure_tsv(&cells),
        );
        let (text, cells) = figure(
            runner,
            "Figure 6b: EmbDI, noisy instances/schemata",
            &[MatcherKind::EmbDI],
            |r| r.noisy_instances || r.noisy_schema,
        );
        println!("\n{text}");
        write_out(&opts.out_dir, "fig6_embdi_noisy.tsv", &figure_tsv(&cells));

        // SemProp runs on ChEMBL only (the ontology-compatible source).
        let c = get_corpus();
        let chembl: Vec<DatasetPair> = c.by_source("chembl").into_iter().cloned().collect();
        println!("  running SemProp grid on {} ChEMBL pairs …", chembl.len());
        let sem_runner = run_methods(&chembl, &[MatcherKind::SemProp], opts.scale, opts.threads);
        let (text, cells) = figure(
            &sem_runner,
            "Figure 6c: SemProp on ChEMBL (all noise levels)",
            &[MatcherKind::SemProp],
            |_| true,
        );
        println!("\n{text}");
        println!(
            "paper shape: SemProp lowest of all methods; EmbDI inconsistent, best on joinable."
        );
        write_out(&opts.out_dir, "fig6_semprop.tsv", &figure_tsv(&cells));
    }

    if run("fig7") {
        let c = get_corpus();
        let wikidata: Vec<DatasetPair> = c.by_source("wikidata").into_iter().cloned().collect();
        println!(
            "  running {} methods on {} WikiData pairs …",
            NON_SEMPROP_METHODS.len(),
            wikidata.len()
        );
        let runner = run_methods(&wikidata, &NON_SEMPROP_METHODS, opts.scale, opts.threads);
        let (text, cells) = figure(
            &runner,
            "Figure 7: WikiData curated pairs (Recall@GT per scenario)",
            &NON_SEMPROP_METHODS,
            |_| true,
        );
        println!("\n{text}");
        println!("paper shape: instance-based > schema-based everywhere; instance-based reach 1.0 on joinable;");
        println!(
            "COMA instance wins semantically-joinable; Distribution-based weak on view-unionable."
        );
        write_out(&opts.out_dir, "fig7.tsv", &figure_tsv(&cells));
    }

    if run("table3") {
        let c = get_corpus();
        let methods: Vec<MatcherKind> = MatcherKind::ALL
            .iter()
            .copied()
            .filter(|m| !matches!(m, MatcherKind::SemProp))
            .collect();

        let magellan: Vec<DatasetPair> = c.by_source("magellan").into_iter().cloned().collect();
        let ing: Vec<DatasetPair> = c.by_source("ing").into_iter().cloned().collect();
        println!(
            "  running {} methods on Magellan + ING pairs …",
            methods.len()
        );
        let run_mag = run_methods(&magellan, &methods, opts.scale, opts.threads);
        let run_ing = run_methods(&ing, &methods, opts.scale, opts.threads);

        let mut rows = Vec::new();
        for &m in &methods {
            let mag_scores = run_mag.best_recalls_where(m, |_| true);
            let mag = mag_scores.iter().sum::<f64>() / mag_scores.len().max(1) as f64;
            let ing1 = run_ing
                .best_recalls_where(m, |r| r.pair_id == "ing/1")
                .first()
                .copied()
                .unwrap_or(0.0);
            let ing2 = run_ing
                .best_recalls_where(m, |r| r.pair_id == "ing/2")
                .first()
                .copied()
                .unwrap_or(0.0);
            rows.push((m, vec![("magellan", mag), ("ing#1", ing1), ("ing#2", ing2)]));
        }
        let text = render_recall_table(
            "Table III: Recall@GT on Magellan and ING data",
            &rows,
            &["magellan", "ing#1", "ing#2"],
        );
        println!("\n{text}");
        println!("paper values: Magellan — schema-based 1.0, Dist 0.54, JL 0.787, EmbDI 0.818;");
        println!("ING#1 — Dist 0.857 best, SF 0.357 worst; ING#2 — Dist 0.879 ≫ COMA 0.121/0.136.");
        let mut tsv = String::from("method\tmagellan\ting1\ting2\n");
        for (m, cells) in &rows {
            tsv.push_str(&format!(
                "{}\t{:.4}\t{:.4}\t{:.4}\n",
                m.label(),
                cells[0].1,
                cells[1].1,
                cells[2].1
            ));
        }
        write_out(&opts.out_dir, "table3.tsv", &tsv);
    }

    if run("table4") {
        let runner = get_fabricated_runner();
        println!("\n== Table IV: average runtime per experiment (seconds) ==");
        println!(
            "{:<24} {:>12} {:>14}",
            "method", "measured (s)", "paper (s)"
        );
        let paper_runtimes: &[(MatcherKind, f64)] = &[
            (MatcherKind::Cupid, 9.64),
            (MatcherKind::SimilarityFlooding, 7.09),
            (MatcherKind::ComaSchema, 1.67),
            (MatcherKind::ComaInstance, 318.07),
            (MatcherKind::DistributionDist1, 71.16),
            (MatcherKind::DistributionDist2, 71.16),
            (MatcherKind::SemProp, 735.25),
            (MatcherKind::EmbDI, 4817.87),
            (MatcherKind::JaccardLevenshtein, 522.94),
        ];
        let mut tsv = String::from("method\tmeasured_s\tpaper_s\n");
        for &(m, paper) in paper_runtimes {
            let measured = match m {
                MatcherKind::SemProp => {
                    // SemProp timing from its ChEMBL-only run
                    let c = get_corpus();
                    let chembl: Vec<DatasetPair> =
                        c.by_source("chembl").into_iter().take(4).cloned().collect();
                    let r = run_methods(&chembl, &[MatcherKind::SemProp], opts.scale, opts.threads);
                    r.mean_runtime(m)
                }
                _ => runner.mean_runtime(m),
            };
            if let Some(d) = measured {
                println!(
                    "{:<24} {:>12.4} {:>14.2}",
                    m.label(),
                    d.as_secs_f64(),
                    paper
                );
                tsv.push_str(&format!(
                    "{}\t{:.6}\t{:.2}\n",
                    m.label(),
                    d.as_secs_f64(),
                    paper
                ));
            }
        }
        println!("paper shape: schema-based fastest (COMA-schema < SF < Cupid);");
        println!("instance/hybrid orders of magnitude slower; EmbDI worst overall.");
        write_out(&opts.out_dir, "table4.tsv", &tsv);
        write_out(&opts.out_dir, "records.tsv", &records_tsv(runner));
        let failures = render_error_summary(runner);
        if !failures.is_empty() {
            println!("\n{failures}");
        }
    }

    println!("\ncompleted in {:.1}s", started.elapsed().as_secs_f64());
}
