//! Guard: the serving layer must actually buy concurrency and caching.
//!
//! Two hard assertions over a live `valentine-serve` instance:
//!
//! 1. **Concurrency** — 8 clients issuing 16 distinct cold queries reach
//!    at least 2× the QPS of one client issuing the same 16 queries
//!    serially. The floor only applies on machines with ≥4 cores (CI
//!    runners); on smaller boxes the pool cannot physically overlap
//!    re-ranks, so the floor relaxes to 0.8× (the hand-off overhead must
//!    still not *lose* throughput).
//! 2. **Caching** — a repeated query answered from the LRU is at least
//!    10× faster than its cold run, on any machine: a hit skips LSH and
//!    every matcher call, and the obs counters prove it did.
//!
//! Run with `cargo bench --bench serve_throughput`; `--quick` shrinks the
//! corpus rows for smoke runs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use valentine_core::prelude::*;
use valentine_serve::{metrics, ServeConfig, ServerHandle};

/// Indexed tables — one distinct cold query each.
const TABLES: usize = 16;
/// Concurrent clients in the throughput phase.
const CLIENTS: usize = 8;
/// Cached-latency sample size.
const REPEATS: u32 = 32;

/// Overlapping integer/label tables: every query ranks real candidates
/// and the re-rank stage has genuine work to do.
fn corpus(rows: i64) -> LoadedIndex {
    let mut idx = Index::new(IndexConfig::default());
    for i in 0..TABLES as i64 {
        let lo = i * rows / 8;
        let table = Table::from_pairs(
            format!("table_{i}"),
            vec![
                ("id", (lo..lo + rows).map(Value::Int).collect()),
                (
                    "label",
                    (lo..lo + rows)
                        .map(|v| Value::str(format!("item-{v}")))
                        .collect(),
                ),
            ],
        )
        .expect("uniform columns");
        idx.ingest("bench", table);
    }
    LoadedIndex::from(idx)
}

fn config() -> ServeConfig {
    ServeConfig {
        pool_threads: CLIENTS,
        accept_threads: CLIENTS,
        cache_capacity: 64,
        default_deadline: Some(Duration::from_secs(120)),
        default_k: 3,
        default_rerank: Some(MatcherKind::ComaInstance),
        // More re-rank calls per query than the single profile the cache
        // path pays: the cold/cached gap is matcher work, by construction.
        candidate_cap: TABLES,
        ..ServeConfig::default()
    }
}

/// One request, read to EOF; panics on a non-200 so a broken server fails
/// the guard loudly instead of skewing the timings.
fn get(addr: SocketAddr, target: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "query failed: {response}"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows: i64 = if quick { 60 } else { 200 };
    let index = corpus(rows);
    let targets: Vec<String> = (0..TABLES)
        .map(|i| format!("/search?kind=unionable&table=table_{i}"))
        .collect();

    // Phase 1: one client, every query cold, in series.
    let server = ServerHandle::start(index.clone(), config()).expect("bind");
    let started = Instant::now();
    for target in &targets {
        get(server.addr(), target);
    }
    let serial = started.elapsed();

    // Phase 2 (same instance, now fully warmed): cached repeat latency.
    let started = Instant::now();
    for _ in 0..REPEATS {
        get(server.addr(), &targets[0]);
    }
    let cached = started.elapsed() / REPEATS;
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.counter(metrics::CACHE_HITS),
        u64::from(REPEATS),
        "every repeat must come from the cache"
    );
    let cold_calls = snapshot.counter("index/matcher_calls");
    assert!(cold_calls > 0, "cold queries must re-rank");

    let cold = serial / targets.len() as u32;
    let cache_ratio = cold.as_secs_f64() / cached.as_secs_f64().max(1e-9);
    assert!(
        cache_ratio >= 10.0,
        "a cached repeat must be >=10x faster than its cold run: \
         cold {cold:?} vs cached {cached:?} ({cache_ratio:.1}x)"
    );

    // Phase 3: the same 16 cold queries, 8 clients at once, fresh server.
    let server = ServerHandle::start(index, config()).expect("bind");
    let addr = server.addr();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for chunk in targets.chunks(targets.len().div_ceil(CLIENTS)) {
            scope.spawn(move || {
                for target in chunk {
                    get(addr, target);
                }
            });
        }
    });
    let concurrent = started.elapsed();
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.counter(metrics::CACHE_HITS),
        0,
        "distinct queries must not alias in the cache"
    );

    let speedup = serial.as_secs_f64() / concurrent.as_secs_f64().max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = if cores >= 4 { 2.0 } else { 0.8 };
    if cores < 4 {
        println!(
            "serve throughput: {cores} core(s) — the pool cannot overlap re-ranks, \
             relaxing the concurrency floor to {floor}x"
        );
    }
    assert!(
        speedup >= floor,
        "{CLIENTS} concurrent clients must reach >={floor}x the serialized QPS: \
         serial {serial:?} vs concurrent {concurrent:?} ({speedup:.2}x)"
    );

    println!(
        "serve throughput guard: {} queries ({rows} rows/table, {cold_calls} matcher calls) — \
         serial {serial:.0?} | {CLIENTS} clients {concurrent:.0?} ({speedup:.2}x, floor {floor}x) | \
         cold {cold:.0?} vs cached {cached:.0?} ({cache_ratio:.0}x)",
        targets.len(),
    );
}
