//! Guard: injected hangs must not stall the run.
//!
//! The resilience claim of the runner is that a stuck matcher costs its
//! own task deadline and nothing else: the (pair × method) grid keeps
//! draining on the other workers, and only the hung cells turn into
//! `deadline exceeded` records. This bench makes that a hard assertion: a
//! 32-task run (4 fabricated pairs × 8 method slots, each a 20 ms sleep
//! matcher) with 4 scripted hang faults and a 30 ms task deadline must
//!
//! 1. finish within 2× the clean run's wall-clock, and
//! 2. lose exactly the 4 hung records — everything else completes.
//!
//! Run with `cargo bench --bench resilience`; `--quick` is accepted for CI
//! symmetry (the guard is already a single fast round).

use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use valentine_bench::bench_pair;
use valentine_core::fault::{FaultPlan, FaultyMatcher};
use valentine_core::prelude::*;
use valentine_core::GridScale;

/// Simulated per-task matcher cost.
const SLEEP: Duration = Duration::from_millis(20);
/// Per-task budget: comfortably above [`SLEEP`], far below a real hang.
const TASK_DEADLINE: Duration = Duration::from_millis(30);
/// Worker pool width.
const THREADS: usize = 8;
/// Method slots per pair (× 4 pairs = 32 tasks).
const METHOD_SLOTS: usize = 8;

/// A well-behaved matcher with a fixed, known cost.
struct SleepMatcher;

impl Matcher for SleepMatcher {
    fn name(&self) -> String {
        "sleep(20ms)".to_string()
    }

    fn match_tables(
        &self,
        _source: &Table,
        _target: &Table,
    ) -> Result<MatchResult, valentine_core::matchers::MatchError> {
        std::thread::sleep(SLEEP);
        Ok(MatchResult::ranked(vec![ColumnMatch::new("a", "b", 1.0)]))
    }
}

/// 8 single-config method slots, optionally fault-wrapped under one shared
/// invocation counter.
fn grids(plan: Option<&FaultPlan>) -> Vec<(MatcherKind, Vec<Box<dyn Matcher>>)> {
    let calls = Arc::new(AtomicUsize::new(0));
    MatcherKind::ALL[..METHOD_SLOTS]
        .iter()
        .map(|&kind| {
            let grid: Vec<Box<dyn Matcher>> = vec![Box::new(SleepMatcher)];
            let grid = match plan {
                Some(p) => FaultyMatcher::wrap_grid(grid, p, &calls),
                None => grid,
            };
            (kind, grid)
        })
        .collect()
}

fn timed_run(
    pairs: &[DatasetPair],
    grids: &[(MatcherKind, Vec<Box<dyn Matcher>>)],
) -> (Duration, Runner) {
    let config = RunnerConfig {
        methods: Vec::new(), // run_grids takes the grids explicitly
        scale: GridScale::Small,
        threads: THREADS,
        task_deadline: Some(TASK_DEADLINE),
        run_deadline: None,
        retry_on_timeout: false,
    };
    let t = Instant::now();
    let runner = Runner::run_grids(pairs, grids, &config, &CompletedSet::default(), |_| {});
    (t.elapsed(), runner)
}

fn main() {
    let _quick = std::env::args().any(|a| a == "--quick");
    let pairs: Vec<DatasetPair> = ScenarioKind::ALL.iter().map(|&s| bench_pair(s)).collect();
    let tasks = pairs.len() * METHOD_SLOTS;
    assert_eq!(tasks, 32);

    let (clean_elapsed, clean) = timed_run(&pairs, &grids(None));
    assert_eq!(clean.len(), tasks);
    assert_eq!(
        clean.records().iter().filter(|r| r.failed()).count(),
        0,
        "the clean run must not lose records"
    );

    let plan = FaultPlan::parse("hang@3,hang@10,hang@17,hang@24").expect("valid plan");
    let (faulty_elapsed, faulty) = timed_run(&pairs, &grids(Some(&plan)));

    assert_eq!(faulty.len(), tasks, "every task reports, hung or not");
    let failed: Vec<_> = faulty.records().iter().filter(|r| r.failed()).collect();
    assert_eq!(
        failed.len(),
        4,
        "exactly the 4 hung cells are lost: {failed:?}"
    );
    for rec in &failed {
        let err = rec.error.as_deref().unwrap_or("");
        assert!(
            err.starts_with("deadline exceeded"),
            "hangs must die as deadline records, got: {err}"
        );
    }
    assert!(
        faulty_elapsed <= clean_elapsed * 2,
        "4 hangs must cost at most one deadline each, not stall the run: \
         faulty {faulty_elapsed:?} vs clean {clean_elapsed:?}"
    );

    println!(
        "resilience guard: {} tasks over {} workers — clean {:.0?} | 4 injected hangs {:.0?} (<= 2x) | {} records lost to deadlines",
        tasks, THREADS, clean_elapsed, faulty_elapsed, failed.len(),
    );
}
