//! Guard: the sampling profiler is free when off and cheap at 97 Hz.
//!
//! `--profile-hz` mirrors every live span push/pop into a per-thread
//! stack the sampler thread reads. Two promises make that acceptable in
//! production: an *armed* profiler must never touch the untraced span
//! fast path (the `ARMED` check sits behind the enabled check), and a
//! 97 Hz sampler over a fully traced workload must cost under 3% of
//! wall-clock. This bench turns both into hard assertions. Run with
//! `cargo bench --bench profiler_overhead`.

use std::time::Instant;

use valentine_bench::bench_pair;
use valentine_core::obs;
use valentine_core::prelude::*;

/// Wall-clock budget for 97 Hz sampling, in percent of the baseline.
const PROFILED_BUDGET_PCT: f64 = 3.0;
/// Absolute slack absorbing scheduler noise on short workloads.
const EPSILON_MS: f64 = 20.0;
/// The sample rate CI runs with — a prime, so it cannot alias against
/// millisecond-periodic phases of the workload.
const HZ: u32 = 97;

/// Per-iteration cost of one disabled span, best of `rounds`.
fn disabled_span_ns(rounds: usize) -> f64 {
    const ITERS: u64 = 2_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..ITERS {
            let _g = obs::span!("profiler_overhead/disabled");
        }
        best = best.min(start.elapsed().as_nanos() as f64 / ITERS as f64);
    }
    best
}

fn main() {
    assert!(
        !obs::is_enabled() && !obs::profiler::is_running(),
        "guard must start from the untraced, unprofiled state"
    );
    let pair = bench_pair(ScenarioKind::Unionable);
    let matcher = MatcherKind::ComaInstance.instantiate();

    // Part 1 — armed but untraced: spans that record nothing must mirror
    // nothing. The armed cost may not exceed the disarmed cost by more
    // than measurement noise (2x + 2ns covers timer granularity; a mirror
    // push by mistake would cost a mutex + allocation, far above that).
    let off_ns = disabled_span_ns(5);
    obs::profiler::start(HZ).expect("profiler starts");
    let armed_ns = disabled_span_ns(5);
    obs::profiler::stop();
    println!("disabled span: {off_ns:.2} ns/op off, {armed_ns:.2} ns/op armed");
    assert!(
        armed_ns <= off_ns * 2.0 + 2.0,
        "an armed profiler must not slow the untraced span path \
         ({off_ns:.2} ns -> {armed_ns:.2} ns)"
    );

    // Part 2 — 97 Hz over a live-span workload. Calibrate the iteration
    // count to ~400ms so the sampler observes dozens of wakeups, then
    // compare best-of-3 wall-clock with and without it.
    let workload = |n: usize| -> f64 {
        let start = Instant::now();
        let (_, snapshot) = obs::capture(|| {
            for _ in 0..n {
                std::hint::black_box(
                    matcher
                        .match_tables(&pair.source, &pair.target)
                        .expect("matcher runs"),
                );
            }
        });
        assert!(!snapshot.spans.is_empty(), "workload must open spans");
        start.elapsed().as_secs_f64() * 1e3
    };
    workload(1); // warm lazy state so calibration sees steady-state cost
    let once_ms = workload(1);
    let n = ((400.0 / once_ms).ceil() as usize).max(1);

    let best = |rounds: usize, f: &dyn Fn() -> f64| -> f64 {
        (0..rounds).map(|_| f()).fold(f64::INFINITY, f64::min)
    };
    let baseline_ms = best(3, &|| workload(n));
    obs::profiler::start(HZ).expect("profiler starts");
    let profiled_ms = best(3, &|| workload(n));
    let folded = obs::profiler::stop();
    assert!(
        !folded.is_empty(),
        "{HZ} Hz over a {baseline_ms:.0}ms live-span workload must catch samples"
    );

    let budget_ms = baseline_ms * (1.0 + PROFILED_BUDGET_PCT / 100.0) + EPSILON_MS;
    let overhead_pct = 100.0 * (profiled_ms - baseline_ms) / baseline_ms;
    println!(
        "workload x{n}: baseline {baseline_ms:.1}ms, {HZ} Hz {profiled_ms:.1}ms \
         ({overhead_pct:+.2}%), {} distinct stack(s)",
        folded.len()
    );
    assert!(
        profiled_ms <= budget_ms,
        "{HZ} Hz sampling cost {overhead_pct:.2}% wall-clock, \
         over the {PROFILED_BUDGET_PCT}% budget"
    );
    println!("profiler overhead within {PROFILED_BUDGET_PCT}% budget");
}
