//! Discovery-index micro-bench: brute-force all-pairs matching vs the
//! sketch-based index (`valentine-index`) on the same corpus and queries.
//!
//! Three measurements over a fabricated corpus of verbatim unionable
//! pairs:
//!
//! * `brute_force` — every query table matched against every indexed
//!   table (corpus-size matcher calls per query);
//! * `index_assisted` — LSH candidates re-ranked by the same matcher
//!   under the default candidate cap (strictly fewer matcher calls, as
//!   asserted below before the timer starts);
//! * `sketch_only` — the stage-1 ranking alone, zero matcher calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valentine_core::discovery::{build_discovery_corpus, DiscoveryEvalConfig};
use valentine_core::prelude::*;

fn bench_index_search(c: &mut Criterion) {
    let config = DiscoveryEvalConfig {
        per_source: 4,
        search: SearchOptions {
            rerank: Some(MatcherKind::JaccardLevenshtein),
            candidate_cap: 5,
            threads: 2,
        },
        ..DiscoveryEvalConfig::default()
    };
    let (index, queries) = build_discovery_corpus(&config);
    let k = config.k;

    // The index must beat brute force on matcher calls before we bother
    // timing anything — the bench exists to quantify *how much*.
    let mut indexed_calls = 0;
    let mut brute_calls = 0;
    for q in &queries {
        indexed_calls += index
            .top_k_unionable(&q.table, k, &config.search)
            .stats
            .matcher_calls;
        brute_calls += index
            .brute_force_unionable(&q.table, k, MatcherKind::JaccardLevenshtein)
            .stats
            .matcher_calls;
    }
    assert!(
        indexed_calls < brute_calls,
        "index issued {indexed_calls} matcher calls, brute force {brute_calls}"
    );
    println!(
        "matcher calls over {} queries x {} tables: index {indexed_calls}, brute force {brute_calls}",
        queries.len(),
        index.len()
    );

    let mut group = c.benchmark_group("index_search");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let query = &queries[0].table;
    group.bench_with_input(
        BenchmarkId::new("unionable", "brute_force"),
        query,
        |b, q| {
            b.iter(|| {
                std::hint::black_box(index.brute_force_unionable(
                    q,
                    k,
                    MatcherKind::JaccardLevenshtein,
                ))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("unionable", "index_assisted"),
        query,
        |b, q| b.iter(|| std::hint::black_box(index.top_k_unionable(q, k, &config.search))),
    );
    let sketch_only = SearchOptions::sketch_only();
    group.bench_with_input(
        BenchmarkId::new("unionable", "sketch_only"),
        query,
        |b, q| b.iter(|| std::hint::black_box(index.top_k_unionable(q, k, &sketch_only))),
    );
    group.finish();
}

criterion_group!(benches, bench_index_search);
criterion_main!(benches);
