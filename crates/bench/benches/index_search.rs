//! Discovery-index micro-bench: brute-force all-pairs matching vs the
//! sketch-based index (`valentine-index`) on the same corpus and queries.
//!
//! Three measurements over a fabricated corpus of verbatim unionable
//! pairs:
//!
//! * `brute_force` — every query table matched against every indexed
//!   table (corpus-size matcher calls per query);
//! * `index_assisted` — LSH candidates re-ranked by the same matcher
//!   under the default candidate cap (strictly fewer matcher calls, as
//!   asserted below before the timer starts);
//! * `sketch_only` — the stage-1 ranking alone, zero matcher calls.
//!
//! A second group, `index_scaling`, guards the VIDX v2 format's scaling
//! claims before timing anything: query latency must grow sub-linearly
//! from a 10× to a 100× corpus (LSH probes buckets, not tables), RSS must
//! stay bounded while a 100× corpus is ingested through the incremental
//! [`IndexWriter`] (generations stream to disk; the writer never holds
//! the corpus), and a v1 file must answer byte-identically to the v2
//! directory migrated from it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valentine_core::discovery::{build_discovery_corpus, DiscoveryEvalConfig};
use valentine_core::index::{v2, IndexWriter};
use valentine_core::prelude::*;

fn bench_index_search(c: &mut Criterion) {
    let config = DiscoveryEvalConfig {
        per_source: 4,
        search: SearchOptions {
            rerank: Some(MatcherKind::JaccardLevenshtein),
            candidate_cap: 5,
            threads: 2,
        },
        ..DiscoveryEvalConfig::default()
    };
    let (index, queries) = build_discovery_corpus(&config);
    let k = config.k;

    // The index must beat brute force on matcher calls before we bother
    // timing anything — the bench exists to quantify *how much*.
    let mut indexed_calls = 0;
    let mut brute_calls = 0;
    for q in &queries {
        indexed_calls += index
            .top_k_unionable(&q.table, k, &config.search)
            .stats
            .matcher_calls;
        brute_calls += index
            .brute_force_unionable(&q.table, k, MatcherKind::JaccardLevenshtein)
            .stats
            .matcher_calls;
    }
    assert!(
        indexed_calls < brute_calls,
        "index issued {indexed_calls} matcher calls, brute force {brute_calls}"
    );
    println!(
        "matcher calls over {} queries x {} tables: index {indexed_calls}, brute force {brute_calls}",
        queries.len(),
        index.len()
    );

    let mut group = c.benchmark_group("index_search");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let query = &queries[0].table;
    group.bench_with_input(
        BenchmarkId::new("unionable", "brute_force"),
        query,
        |b, q| {
            b.iter(|| {
                std::hint::black_box(index.brute_force_unionable(
                    q,
                    k,
                    MatcherKind::JaccardLevenshtein,
                ))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("unionable", "index_assisted"),
        query,
        |b, q| b.iter(|| std::hint::black_box(index.top_k_unionable(q, k, &config.search))),
    );
    let sketch_only = SearchOptions::sketch_only();
    group.bench_with_input(
        BenchmarkId::new("unionable", "sketch_only"),
        query,
        |b, q| b.iter(|| std::hint::black_box(index.top_k_unionable(q, k, &sketch_only))),
    );
    group.finish();
}

/// A cheap synthetic table over a distinct integer range: corpus size can
/// scale to thousands without fabricator cost, and distinct ranges keep
/// LSH buckets from degenerating into one giant collision.
fn synth_table(i: u64) -> Table {
    let lo = (i * 97) as i64;
    Table::from_pairs(
        format!("synth_{i}"),
        vec![
            ("id", (lo..lo + 120).map(Value::Int).collect()),
            (
                "label",
                (lo..lo + 120)
                    .map(|v| Value::str(format!("item-{v}")))
                    .collect(),
            ),
        ],
    )
    .expect("synthetic table is well-formed")
}

fn synth_index(tables: u64) -> Index {
    let mut idx = Index::new(IndexConfig::default());
    let batch: Vec<(String, Table)> = (0..tables)
        .map(|i| ("synth".to_string(), synth_table(i)))
        .collect();
    idx.ingest_batch(batch, 4);
    idx
}

/// Median over `rounds` of the total wall time for `iters` sketch-only
/// queries (medians shrug off scheduler noise that poisons single runs).
fn median_query_ns(index: &Index, query: &Table, k: usize) -> u128 {
    let opts = SearchOptions::sketch_only();
    for _ in 0..5 {
        std::hint::black_box(index.top_k_unionable(query, k, &opts));
    }
    let mut samples: Vec<u128> = (0..5)
        .map(|_| {
            let start = std::time::Instant::now();
            for _ in 0..20 {
                std::hint::black_box(index.top_k_unionable(query, k, &opts));
            }
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Resident set size in kB from `/proc/self/status` (linux only).
#[cfg(target_os = "linux")]
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn bench_index_scaling(c: &mut Criterion) {
    const BASE: u64 = 10;
    let k = 5;
    let query = synth_table(3);

    // --- bounded RSS during a 100× incremental ingest -------------------
    // Generations stream to disk batch by batch; peak RSS growth must stay
    // far below what holding the profiled corpus in memory would cost.
    let dir = std::env::temp_dir().join(format!("valentine_bench_scaling_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let v2_dir = dir.join("corpus-100x.vidx");
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    #[cfg(target_os = "linux")]
    let rss_before = rss_kb();
    let mut writer =
        IndexWriter::create(&v2_dir, IndexConfig::default(), 4).expect("create v2 writer");
    #[cfg(target_os = "linux")]
    let mut rss_peak = 0u64;
    for chunk in 0..(BASE * 100 / 50) {
        let batch: Vec<(String, Table)> = (chunk * 50..(chunk + 1) * 50)
            .map(|i| ("synth".to_string(), synth_table(i)))
            .collect();
        writer.add_batch(batch, 4).expect("incremental add");
        #[cfg(target_os = "linux")]
        if let Some(now) = rss_kb() {
            rss_peak = rss_peak.max(now);
        }
    }
    writer.finish().expect("finish manifest");
    #[cfg(target_os = "linux")]
    if let (Some(before), true) = (rss_before, rss_peak > 0) {
        let growth_kb = rss_peak.saturating_sub(before);
        assert!(
            growth_kb < 512 * 1024,
            "ingesting the 100x corpus grew RSS by {growth_kb} kB — the writer is \
             accumulating profiles instead of streaming generations to disk"
        );
        println!("100x ingest RSS growth: {growth_kb} kB (bound 512 MiB)");
    }

    // --- sub-linear query scaling 10× → 100× ----------------------------
    let idx_10x = synth_index(BASE * 10);
    let idx_100x = Index::load(&v2_dir).expect("load the 100x corpus back");
    assert_eq!(idx_100x.len(), (BASE * 100) as usize);
    let t_10x = median_query_ns(&idx_10x, &query, k).max(1);
    let t_100x = median_query_ns(&idx_100x, &query, k).max(1);
    let ratio = t_100x as f64 / t_10x as f64;
    // Linear scaling would be ~10×; LSH probing plus sketch-scoring a
    // near-constant candidate set must come in well under that.
    assert!(
        ratio < 5.0,
        "sketch query slowed {ratio:.2}x going 10x -> 100x (linear would be 10x): \
         candidate generation is scanning the corpus"
    );
    println!("query scaling 10x -> 100x: {ratio:.2}x ({t_10x} ns -> {t_100x} ns per 20 queries)");

    // --- v1 file ↔ v2 directory answer byte-identically -----------------
    let small = synth_index(BASE);
    let v1_path = dir.join("corpus.vidx");
    small.save(&v1_path).expect("save v1");
    let from_v1 = Index::load(&v1_path).expect("load v1");
    v2::migrate_v1_file(&v1_path, 4).expect("migrate v1 in place");
    let from_v2 = Index::load(&v1_path).expect("load migrated v2");
    let opts = SearchOptions::sketch_only();
    for i in 0..BASE {
        let q = synth_table(i);
        assert_eq!(
            from_v1.top_k_unionable(&q, k, &opts),
            from_v2.top_k_unionable(&q, k, &opts),
            "v1 and migrated v2 diverge on query {i}"
        );
    }

    let mut group = c.benchmark_group("index_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let sketch_only = SearchOptions::sketch_only();
    for (label, idx) in [("10x", &idx_10x), ("100x", &idx_100x)] {
        group.bench_with_input(BenchmarkId::new("sketch_query", label), &query, |b, q| {
            b.iter(|| std::hint::black_box(idx.top_k_unionable(q, k, &sketch_only)))
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_index_search, bench_index_scaling);
criterion_main!(benches);
