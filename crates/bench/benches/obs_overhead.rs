//! Guard: disabled instrumentation must be near-free on the Table IV
//! workload.
//!
//! The obs crate promises that an untraced run pays almost nothing for the
//! phase spans compiled into every matcher. This bench makes that promise
//! a hard assertion instead of a hope: it measures the cost of one
//! disabled `span!` call, counts how many spans each method opens per
//! `match_tables` call (via a capture), times the uninstrumented call, and
//! fails if the projected span overhead exceeds 2% of the call time for
//! any method. Run with `cargo bench --bench obs_overhead`.

use std::time::Instant;

use valentine_bench::bench_pair;
use valentine_core::obs;
use valentine_core::prelude::*;

/// Overhead budget for disabled instrumentation, in percent of call time.
const BUDGET_PCT: f64 = 2.0;

fn main() {
    assert!(
        !obs::is_enabled(),
        "guard must measure the disabled fast path"
    );
    let pair = bench_pair(ScenarioKind::Unionable);

    // Cost of one span open/close on the disabled fast path (one atomic
    // load plus a thread-local check).
    const SPAN_ITERS: u64 = 2_000_000;
    let start = Instant::now();
    for _ in 0..SPAN_ITERS {
        let _g = obs::span!("obs_overhead/disabled");
    }
    let span_ns = start.elapsed().as_nanos() as f64 / SPAN_ITERS as f64;
    println!("disabled span cost: {span_ns:.1} ns/op");
    println!(
        "{:<24} {:>10} {:>14} {:>10}",
        "method", "spans/call", "call time", "overhead"
    );

    let mut worst = 0.0f64;
    for kind in MatcherKind::ALL {
        if kind == MatcherKind::SemProp {
            continue; // same skip as table4_runtime: benched on its ontology source
        }
        let matcher = kind.instantiate();

        // How many spans one call opens (counted under a capture, which
        // activates recording for this thread only).
        let (result, snapshot) = obs::capture(|| matcher.match_tables(&pair.source, &pair.target));
        result.expect("matcher runs");
        let spans_per_call: u64 = snapshot.spans.values().map(|s| s.count).sum();
        assert!(spans_per_call > 0, "{} opens no spans", kind.label());

        // Uninstrumented call time: best of three, to shrug off scheduler
        // noise (an inflated call time would hide overhead, never add it).
        let mut call_ns = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            std::hint::black_box(
                matcher
                    .match_tables(&pair.source, &pair.target)
                    .expect("matcher runs"),
            );
            call_ns = call_ns.min(t.elapsed().as_nanos() as f64);
        }

        let overhead_pct = 100.0 * span_ns * spans_per_call as f64 / call_ns;
        println!(
            "{:<24} {:>10} {:>14} {:>9.4}%",
            kind.label(),
            spans_per_call,
            obs::report::fmt_ns(call_ns as u64),
            overhead_pct
        );
        assert!(
            overhead_pct < BUDGET_PCT,
            "{}: projected disabled-span overhead {overhead_pct:.4}% exceeds {BUDGET_PCT}%",
            kind.label()
        );
        worst = worst.max(overhead_pct);
    }
    println!("worst-case disabled overhead {worst:.4}% (budget {BUDGET_PCT}%)");
}
