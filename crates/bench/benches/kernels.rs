//! Guard: the chunked kernels must actually beat their scalar references.
//!
//! Every optimized hot-path kernel in the workspace keeps its original
//! implementation alive as a `*_scalar` function. This bench times each
//! pair head-to-head on realistic shapes and **asserts a floor speedup**,
//! so a refactor that quietly breaks vectorization (or a toolchain that
//! stops autovectorizing a loop shape) fails CI instead of silently
//! re-inflating the similarity phase the kernels were built to shrink.
//!
//! Floors are deliberately conservative — the measured ratios (printed on
//! every run) are typically far higher:
//!
//! * f32 dot products: ≥2× when AVX2 codegen is on (the workspace default
//!   via `.cargo/config.toml`), ≥1× otherwise;
//! * Levenshtein (Myers bit-parallel) and quantile EMD: ≥1.5× on every
//!   ISA — word-level parallelism and f64 add/abs need nothing exotic;
//! * MinHash signatures: **parity floor (≥0.9×)**. Measurement on this
//!   kernel produced a negative result worth recording: the permutation
//!   sweep is `u64`-multiply-throughput-bound, and the "scalar" reference's
//!   inner loop (independent slots per item) is itself vectorizable, so
//!   both layouts saturate the multiplier and tie — even under AVX-512.
//!   The chunked layout is kept for the batched `signature_many` ingest
//!   API and register-resident accumulators; the guard pins that it never
//!   *loses* to the original.
//!
//! Ratios for the remaining kernel pairs (signature Jaccard, Jaro-Winkler,
//! token Jaccard, batched cosine) are measured and printed for trend
//! visibility but not gated — their shapes are small enough that a floor
//! would mostly measure the allocator and the branch predictor.
//!
//! Run with `cargo bench -p valentine-bench --bench kernels`; `--quick`
//! shrinks repetitions for CI smoke runs. Timings take the *minimum* over
//! several interleaved repetitions, which is the standard way to strip
//! scheduler noise from a throughput comparison.

use std::time::{Duration, Instant};

use valentine_embeddings::{cosine_many, cosine_scalar, dot, dot_scalar};
use valentine_solver::{emd_1d_quantiles, emd_1d_quantiles_scalar, MinHasher};
use valentine_text::{
    jaccard_tokens, jaccard_tokens_scalar, jaro_winkler, jaro_winkler_scalar, levenshtein,
    levenshtein_scalar,
};

/// Deterministic pseudo-random stream (SplitMix64) so both sides of every
/// comparison see identical inputs on every run and machine.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn ascii_word(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| char::from(b'a' + (self.next() % 26) as u8))
            .collect()
    }
}

fn time<R>(iters: u32, f: &mut impl FnMut() -> R) -> Duration {
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    started.elapsed()
}

/// Best-of-`reps` interleaved timing of the scalar reference vs the
/// optimized kernel; returns the speedup and prints it.
fn speedup<A, B>(
    label: &str,
    reps: u32,
    iters: u32,
    scalar: &mut impl FnMut() -> A,
    optimized: &mut impl FnMut() -> B,
) -> f64 {
    let mut best_scalar = Duration::MAX;
    let mut best_optimized = Duration::MAX;
    for _ in 0..reps {
        best_scalar = best_scalar.min(time(iters, scalar));
        best_optimized = best_optimized.min(time(iters, optimized));
    }
    let ratio = best_scalar.as_secs_f64() / best_optimized.as_secs_f64().max(1e-12);
    println!(
        "kernel {label:<18} scalar {best_scalar:>12?}  optimized {best_optimized:>12?}  speedup {ratio:.2}x"
    );
    ratio
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps: u32 = if quick { 5 } else { 15 };
    // Floors (see module docs). `cfg!(target_feature)` reflects the actual
    // codegen settings, so overriding the workspace's `-C target-cpu` to a
    // pre-AVX2 baseline relaxes the dot floor instead of failing it.
    let floor_minhash = 0.9;
    let floor_dot = if cfg!(target_feature = "avx2") {
        2.0
    } else {
        1.0
    };
    let floor_string = 1.5;
    let floor_emd = 1.5;
    let mut rng = Rng(0xBEEF);

    // MinHash signatures: an ingest-sized column (2 000 distinct values,
    // 128 permutations — the workspace default k).
    let hasher = MinHasher::new(128, 7);
    let values: Vec<String> = (0..2_000).map(|_| rng.ascii_word(12)).collect();
    let minhash = speedup(
        "minhash-signature",
        reps,
        if quick { 20 } else { 60 },
        &mut || hasher.signature_scalar(&values),
        &mut || hasher.signature(&values),
    );

    // Signature Jaccard: re-rank-shaped, many short comparisons.
    let sig_a = hasher.signature(&values);
    let sig_b = hasher.signature(values.iter().skip(500));
    let jaccard = speedup(
        "minhash-jaccard",
        reps,
        if quick { 2_000 } else { 20_000 },
        &mut || hasher.jaccard_scalar(&sig_a, &sig_b),
        &mut || hasher.jaccard(&sig_a, &sig_b),
    );

    // Quantile EMD: distribution-sketch shape, batched to a timeable size.
    let qa: Vec<f64> = (0..1_024)
        .map(|_| rng.next() as f64 / u64::MAX as f64)
        .collect();
    let qb: Vec<f64> = (0..1_024)
        .map(|_| rng.next() as f64 / u64::MAX as f64)
        .collect();
    let emd = speedup(
        "emd-quantiles",
        reps,
        if quick { 2_000 } else { 20_000 },
        &mut || emd_1d_quantiles_scalar(&qa, &qb),
        &mut || emd_1d_quantiles(&qa, &qb),
    );

    // f32 dot product: embedding-dimension vectors.
    let va: Vec<f32> = (0..1_024)
        .map(|_| (rng.next() as f32 / u64::MAX as f32) - 0.5)
        .collect();
    let vb: Vec<f32> = (0..1_024)
        .map(|_| (rng.next() as f32 / u64::MAX as f32) - 0.5)
        .collect();
    let dot_ratio = speedup(
        "dot-f32",
        reps,
        if quick { 5_000 } else { 50_000 },
        &mut || dot_scalar(&va, &vb),
        &mut || dot(&va, &vb),
    );

    // Batched cosine: one query against a candidate matrix (SemProp /
    // EmbDI re-rank shape) vs a per-row scalar-cosine loop.
    let rows: Vec<Vec<f32>> = (0..128)
        .map(|_| {
            (0..128)
                .map(|_| (rng.next() as f32 / u64::MAX as f32) - 0.5)
                .collect()
        })
        .collect();
    let query: Vec<f32> = (0..128)
        .map(|_| (rng.next() as f32 / u64::MAX as f32) - 0.5)
        .collect();
    let cosine_batch = speedup(
        "cosine-many",
        reps,
        if quick { 200 } else { 2_000 },
        &mut || {
            rows.iter()
                .map(|r| cosine_scalar(&query, r))
                .collect::<Vec<f32>>()
        },
        &mut || cosine_many(&query, &rows),
    );

    // Levenshtein: identifier-length ASCII pairs (Myers bit-parallel path).
    let words: Vec<String> = (0..64)
        .map(|_| {
            let len = 24 + (rng.next() % 16) as usize;
            rng.ascii_word(len)
        })
        .collect();
    let lev = speedup(
        "levenshtein",
        reps,
        if quick { 20 } else { 200 },
        &mut || {
            let mut acc = 0usize;
            for a in &words {
                for b in &words {
                    acc += levenshtein_scalar(a, b);
                }
            }
            acc
        },
        &mut || {
            let mut acc = 0usize;
            for a in &words {
                for b in &words {
                    acc += levenshtein(a, b);
                }
            }
            acc
        },
    );

    // Jaro-Winkler and token Jaccard: printed for visibility, not gated.
    let jw = speedup(
        "jaro-winkler",
        reps,
        if quick { 20 } else { 200 },
        &mut || {
            let mut acc = 0.0f64;
            for a in &words {
                for b in &words {
                    acc += jaro_winkler_scalar(a, b);
                }
            }
            acc
        },
        &mut || {
            let mut acc = 0.0f64;
            for a in &words {
                for b in &words {
                    acc += jaro_winkler(a, b);
                }
            }
            acc
        },
    );
    let token_sets: Vec<Vec<String>> = (0..32)
        .map(|_| (0..12).map(|_| rng.ascii_word(8)).collect())
        .collect();
    let jt = speedup(
        "jaccard-tokens",
        reps,
        if quick { 50 } else { 500 },
        &mut || {
            let mut acc = 0.0f64;
            for a in &token_sets {
                for b in &token_sets {
                    acc += jaccard_tokens_scalar(a, b);
                }
            }
            acc
        },
        &mut || {
            let mut acc = 0.0f64;
            for a in &token_sets {
                for b in &token_sets {
                    acc += jaccard_tokens(a, b);
                }
            }
            acc
        },
    );

    println!(
        "ungated ratios: jaccard {jaccard:.2}x, cosine-many {cosine_batch:.2}x, \
         jaro-winkler {jw:.2}x, jaccard-tokens {jt:.2}x"
    );

    // The floors.
    assert!(
        minhash >= floor_minhash,
        "minhash signature kernel regressed: {minhash:.2}x < {floor_minhash}x floor"
    );
    assert!(
        dot_ratio >= floor_dot,
        "dot kernel regressed: {dot_ratio:.2}x < {floor_dot}x floor"
    );
    assert!(
        lev >= floor_string,
        "levenshtein kernel regressed: {lev:.2}x < {floor_string}x floor"
    );
    assert!(
        emd >= floor_emd,
        "emd kernel regressed: {emd:.2}x < {floor_emd}x floor"
    );
    println!(
        "kernel guard passed: minhash {minhash:.2}x (floor {floor_minhash}x), \
         dot {dot_ratio:.2}x (floor {floor_dot}x), levenshtein {lev:.2}x (floor {floor_string}x), \
         emd {emd:.2}x (floor {floor_emd}x)"
    );
}
