//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Similarity Flooding's fixpoint formulas Basic/A/B/C;
//! * COMA with individual schema sub-matchers disabled;
//! * Distribution-based with and without the ILP refinement;
//! * Cupid's structural-weight sweep;
//! * the LSH-approximate overlap matcher vs the exact Jaccard-Levenshtein
//!   baseline (the paper's future-work item).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valentine_bench::bench_pair;
use valentine_core::prelude::*;
use valentine_core::solver::FixpointFormula;

fn bench_ablations(c: &mut Criterion) {
    let pair = bench_pair(ScenarioKind::Unionable);

    let mut group = c.benchmark_group("ablation_sf_formulas");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for formula in [
        FixpointFormula::Basic,
        FixpointFormula::A,
        FixpointFormula::B,
        FixpointFormula::C,
    ] {
        let matcher = SimilarityFloodingMatcher::with_formula(formula);
        group.bench_with_input(
            BenchmarkId::new("formula", format!("{formula:?}")),
            &pair,
            |b, pair| {
                b.iter(|| {
                    std::hint::black_box(
                        matcher
                            .match_tables(&pair.source, &pair.target)
                            .expect("runs"),
                    )
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_coma_submatchers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    type Tweak = fn(&mut ComaMatcher);
    let variants: [(&str, Tweak); 4] = [
        ("full", |_| {}),
        ("no-name", |m| m.use_name = false),
        ("no-name-path", |m| m.use_name_path = false),
        ("no-dtype", |m| m.use_dtype = false),
    ];
    for (name, tweak) in variants {
        let mut matcher = ComaMatcher::new(ComaStrategy::Schema);
        tweak(&mut matcher);
        group.bench_with_input(BenchmarkId::new("coma", name), &pair, |b, pair| {
            b.iter(|| {
                std::hint::black_box(
                    matcher
                        .match_tables(&pair.source, &pair.target)
                        .expect("runs"),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_distribution_ilp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for skip_ilp in [false, true] {
        let mut matcher = DistributionMatcher::dist1();
        matcher.skip_ilp = skip_ilp;
        group.bench_with_input(
            BenchmarkId::new("ilp", if skip_ilp { "greedy" } else { "exact" }),
            &pair,
            |b, pair| {
                b.iter(|| {
                    std::hint::black_box(
                        matcher
                            .match_tables(&pair.source, &pair.target)
                            .expect("runs"),
                    )
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_approx_vs_exact_overlap");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    {
        let exact = JaccardLevenshteinMatcher::new(0.8);
        group.bench_with_input(BenchmarkId::new("overlap", "exact-jl"), &pair, |b, pair| {
            b.iter(|| {
                std::hint::black_box(
                    exact
                        .match_tables(&pair.source, &pair.target)
                        .expect("runs"),
                )
            })
        });
        let approx = ApproxOverlapMatcher::new();
        group.bench_with_input(
            BenchmarkId::new("overlap", "approx-lsh"),
            &pair,
            |b, pair| {
                b.iter(|| {
                    std::hint::black_box(
                        approx
                            .match_tables(&pair.source, &pair.target)
                            .expect("runs"),
                    )
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_cupid_w_struct");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in [0.0, 0.3, 0.6, 0.9] {
        let matcher = CupidMatcher::new(0.2, w, 0.5);
        group.bench_with_input(
            BenchmarkId::new("w_struct", format!("{w}")),
            &pair,
            |b, pair| {
                b.iter(|| {
                    std::hint::black_box(
                        matcher
                            .match_tables(&pair.source, &pair.target)
                            .expect("runs"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
