//! Guard: the grid scheduler's shared preparation must actually pay.
//!
//! The (pair × method) runner executes one method's whole configuration
//! grid per task, preparing config-invariant state once
//! (`Matcher::prepare`) and finishing every configuration from the shared
//! artifacts (`Matcher::match_prepared`). This bench makes the two
//! scheduler claims hard assertions instead of hopes:
//!
//! 1. the Cupid grid (96 configurations sharing linguistic similarity and
//!    dtype compatibility) runs at least [`MIN_SPEEDUP`]× faster through
//!    `execute_grid` than through the seed's per-config one-shot loop, and
//! 2. a single-pair run over several methods with 8 threads spreads across
//!    more than one worker — the old scheduler capped the pool at
//!    `pairs.len()`.
//!
//! Run with `cargo bench --bench runner_grid`; pass `--quick` (the CI
//! smoke mode) to measure a 24-config slice of the grid with one round
//! instead of best-of-three.

use std::time::{Duration, Instant};

use valentine_bench::bench_pair;
use valentine_core::grids::method_grid;
use valentine_core::prelude::*;
use valentine_core::runner::{execute_grid, execute_one};

/// Required wall-clock improvement of the shared-prepare grid path over
/// the one-shot loop on the Cupid grid.
const MIN_SPEEDUP: f64 = 3.0;

fn time_best_of(rounds: usize, mut f: impl FnMut() -> usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut n = 0;
    for _ in 0..rounds {
        let t = Instant::now();
        n = std::hint::black_box(f());
        best = best.min(t.elapsed());
    }
    (best, n)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 1 } else { 3 };
    let pair = bench_pair(ScenarioKind::Unionable);

    let mut grid = method_grid(MatcherKind::Cupid, GridScale::Small);
    if quick {
        grid.truncate(24);
    }
    println!(
        "cupid grid: {} configurations, best of {} round(s)",
        grid.len(),
        rounds
    );

    // Seed loop: every configuration one-shot, re-deriving the
    // config-invariant similarity matrices each time.
    let (one_shot, n1) = time_best_of(rounds, || {
        grid.iter()
            .map(|m| execute_one(&pair, MatcherKind::Cupid, m.as_ref()))
            .filter(|r| !r.failed())
            .count()
    });

    // Grid path: prepare once, score every configuration from artifacts.
    let (shared, n2) = time_best_of(rounds, || {
        execute_grid(&pair, MatcherKind::Cupid, &grid)
            .iter()
            .filter(|r| !r.failed())
            .count()
    });

    assert_eq!(n1, grid.len(), "one-shot runs all succeed");
    assert_eq!(n2, grid.len(), "grid runs all succeed");
    let speedup = one_shot.as_secs_f64() / shared.as_secs_f64();
    println!(
        "one-shot {:.1?}, shared-prepare {:.1?}: {speedup:.2}x",
        one_shot, shared
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "shared preparation speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor"
    );

    // Scheduler claim: one pair, several methods, 8 threads — the
    // (pair × method) axis must use more than one worker.
    let pairs = vec![pair];
    let config = RunnerConfig {
        methods: vec![
            MatcherKind::ComaSchema,
            MatcherKind::ComaInstance,
            MatcherKind::JaccardLevenshtein,
            MatcherKind::SimilarityFlooding,
        ],
        scale: GridScale::Small,
        threads: 8,
        ..RunnerConfig::default()
    };
    let runner = Runner::run(&pairs, &config);
    let workers: std::collections::BTreeSet<usize> =
        runner.records().iter().map(|r| r.worker).collect();
    println!(
        "single pair, {} methods, 8 threads: workers {:?}",
        config.methods.len(),
        workers
    );
    assert!(
        workers.len() > 1,
        "single-pair run must fan out over multiple workers, got {workers:?}"
    );
    println!(
        "runner_grid guard passed ({speedup:.2}x, {} workers)",
        workers.len()
    );
}
