//! Guard: fault containment must be close to free.
//!
//! Two hard assertions over the checksummed index and the shedding server:
//!
//! 1. **Checksum overhead** — the CRC32C pass is a strict subset of the
//!    work `Index::load` does on a v2 directory, and re-hashing every byte
//!    of the artifact must cost less than 5% of the full load (parse,
//!    profile reconstruction, LSH rebuild). Checksums exist to contain
//!    corruption, not to slow every healthy start-up.
//! 2. **Shed latency** — with the connection queue saturated, an excess
//!    client must see its 503 (Retry-After) in under a millisecond at the
//!    median. Shedding that dawdles is just a slower way to be overloaded.
//!
//! Run with `cargo bench --bench fault_tolerance`; `--quick` shrinks the
//! corpus for smoke runs.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use valentine_core::index::{crc, v2};
use valentine_core::prelude::*;
use valentine_serve::{ServeConfig, ServerHandle};

/// Load iterations averaged in the checksum-overhead phase.
const LOADS: u32 = 8;
/// Shed round trips sampled in the latency phase.
const SHEDS: usize = 32;

fn corpus(tables: i64, rows: i64) -> Index {
    let mut idx = Index::new(IndexConfig::default());
    for i in 0..tables {
        let lo = i * rows / 8;
        let table = Table::from_pairs(
            format!("table_{i}"),
            vec![
                ("id", (lo..lo + rows).map(Value::Int).collect()),
                (
                    "label",
                    (lo..lo + rows)
                        .map(|v| Value::str(format!("item-{v}")))
                        .collect(),
                ),
            ],
        )
        .expect("uniform columns");
        idx.ingest("bench", table);
    }
    idx
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (tables, rows) = if quick { (8, 60) } else { (24, 200) };

    // Phase 1: checksum share of a full v2 load.
    let dir = std::env::temp_dir().join("valentine_bench_fault_tolerance");
    let _ = std::fs::remove_dir_all(&dir);
    v2::save_v2(&corpus(tables, rows), &dir, 4).expect("save v2");
    let files: Vec<Vec<u8>> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| std::fs::read(e.expect("entry").path()).expect("read file"))
        .collect();
    let total_bytes: usize = files.iter().map(Vec::len).sum();

    let started = Instant::now();
    for _ in 0..LOADS {
        let idx = Index::load(&dir).expect("load");
        assert_eq!(idx.len(), tables as usize, "every table survives a load");
        assert!(!idx.is_degraded(), "pristine artifact loads clean");
    }
    let load = started.elapsed() / LOADS;

    let started = Instant::now();
    for _ in 0..LOADS {
        for bytes in &files {
            std::hint::black_box(crc::crc32c(bytes));
        }
    }
    let checksum = started.elapsed() / LOADS;
    let _ = std::fs::remove_dir_all(&dir);

    let share = checksum.as_secs_f64() / load.as_secs_f64().max(1e-9);
    assert!(
        share < 0.05,
        "re-hashing every byte must cost <5% of a full load: \
         crc {checksum:?} vs load {load:?} ({:.1}%)",
        share * 100.0
    );

    // Phase 2: shed latency under a saturated queue. One connection
    // worker and a one-slot queue, pinned by two stalled clients, so
    // every further connection takes the shed path deterministically.
    let server = ServerHandle::start(
        LoadedIndex::from(corpus(8, 60)),
        ServeConfig {
            accept_threads: 1,
            conn_queue: 1,
            header_read_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let pin_worker = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));
    let fill_queue = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));

    let mut latencies: Vec<Duration> = (0..SHEDS)
        .map(|_| {
            let started = Instant::now();
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n")
                .expect("send");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("recv");
            let elapsed = started.elapsed();
            assert!(
                response.starts_with("HTTP/1.1 503"),
                "saturated queue must shed: {response}"
            );
            elapsed
        })
        .collect();
    latencies.sort();
    let median = latencies[SHEDS / 2];
    let worst = latencies[SHEDS - 1];

    drop(pin_worker);
    drop(fill_queue);
    let snapshot = server.shutdown();
    assert!(
        snapshot.counter("serve/sheds") >= SHEDS as u64,
        "every sampled request took the shed path"
    );
    assert!(
        median < Duration::from_millis(1),
        "a shed 503 must come back in <1ms at the median: \
         median {median:?}, worst {worst:?}"
    );

    println!(
        "fault tolerance guard: crc over {total_bytes} bytes {checksum:.0?} vs load {load:.0?} \
         ({:.2}% of load, cap 5%) | shed 503 median {median:.0?}, worst {worst:.0?} \
         over {SHEDS} requests (cap 1ms median)",
        share * 100.0
    );
}
