//! Table IV micro-bench: average runtime per method on a standard pair.
//!
//! This *is* Table IV in criterion form: the relative per-method costs
//! (schema-based ≪ instance-based ≪ EmbDI) are the reproduction target; the
//! absolute numbers scale with the table size. `reproduce table4` prints
//! the wall-clock version next to the paper's published seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valentine_bench::bench_pair;
use valentine_core::prelude::*;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_runtime");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let pair = bench_pair(ScenarioKind::Unionable);
    for kind in MatcherKind::ALL {
        if kind == MatcherKind::SemProp {
            continue; // SemProp is benched on its ontology source in fig6
        }
        let matcher = kind.instantiate();
        group.bench_with_input(
            BenchmarkId::new(kind.label(), "unionable"),
            &pair,
            |b, pair| {
                b.iter(|| {
                    std::hint::black_box(
                        matcher
                            .match_tables(&pair.source, &pair.target)
                            .expect("matcher runs"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
