//! MinHash-LSH banding index.
//!
//! The paper's closing lesson ("Schema Matching is resource-expensive")
//! points at approximate set-similarity indexes — LSH Ensemble, JOSIE,
//! Lazo — as the way to scale instance-based matching. This module
//! implements the classic banding scheme over [`crate::minhash`]
//! signatures: a signature of `k` hashes is cut into `b` bands of `r` rows
//! (`k = b·r`); two sets collide when *any* band hashes identically, which
//! happens with probability `1 − (1 − J^r)^b` — an S-curve around the
//! similarity threshold `(1/b)^(1/r)`.

use valentine_table::{FxHashMap, FxHashSet};

use crate::minhash::Signature;

/// An LSH index over MinHash signatures.
#[derive(Debug)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    /// band index → band hash → member ids
    tables: Vec<FxHashMap<u64, Vec<u32>>>,
    len: usize,
}

impl LshIndex {
    /// Creates an index with `bands` bands of `rows` rows each. Signatures
    /// inserted later must have exactly `bands · rows` components.
    pub fn new(bands: usize, rows: usize) -> LshIndex {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        LshIndex {
            bands,
            rows,
            tables: (0..bands).map(|_| FxHashMap::default()).collect(),
            len: 0,
        }
    }

    /// The similarity threshold where collision probability crosses ~50%:
    /// `(1/b)^(1/r)`.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    /// Number of inserted signatures.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a signature under an id.
    ///
    /// # Panics
    /// Panics if the signature length is not `bands · rows`.
    pub fn insert(&mut self, id: u32, signature: &Signature) {
        assert_eq!(
            signature.0.len(),
            self.bands * self.rows,
            "signature length must equal bands × rows"
        );
        for (band, table) in self.tables.iter_mut().enumerate() {
            let h = band_hash(&signature.0[band * self.rows..(band + 1) * self.rows]);
            table.entry(h).or_default().push(id);
        }
        self.len += 1;
    }

    /// All ids whose signature collides with `signature` in at least one
    /// band (candidate pairs for full verification).
    pub fn candidates(&self, signature: &Signature) -> FxHashSet<u32> {
        assert_eq!(
            signature.0.len(),
            self.bands * self.rows,
            "signature length must equal bands × rows"
        );
        let mut out = FxHashSet::default();
        for (band, table) in self.tables.iter().enumerate() {
            let h = band_hash(&signature.0[band * self.rows..(band + 1) * self.rows]);
            if let Some(ids) = table.get(&h) {
                out.extend(ids.iter().copied());
            }
        }
        out
    }
}

/// Hash of one band's signature rows — the LSH bucket key.
///
/// Exposed so on-disk index formats can shard and sort postings by the
/// exact bucket key the in-memory index uses; the two must agree or a
/// memory-mapped probe would return different candidates than
/// [`LshIndex::candidates`].
pub fn band_hash(rows: &[u64]) -> u64 {
    // Fx-style mixing of the band's minhash values.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in rows {
        h = (h.rotate_left(5) ^ v).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    fn sig(mh: &MinHasher, items: impl IntoIterator<Item = String>) -> Signature {
        mh.signature(items)
    }

    #[test]
    fn identical_sets_always_collide() {
        let mh = MinHasher::new(64, 7);
        let mut idx = LshIndex::new(16, 4);
        let s = sig(&mh, (0..50).map(|i| format!("v{i}")));
        idx.insert(1, &s);
        assert!(idx.candidates(&s).contains(&1));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn similar_sets_collide_dissimilar_mostly_do_not() {
        let mh = MinHasher::new(64, 3);
        let mut idx = LshIndex::new(16, 4);
        // J ≈ 0.9 with set 1, J ≈ 0 with set 2
        let near = sig(&mh, (0..90).map(|i| format!("v{i}")));
        let base = sig(&mh, (0..100).map(|i| format!("v{i}")));
        let far = sig(&mh, (0..100).map(|i| format!("w{i}")));
        idx.insert(1, &near);
        idx.insert(2, &far);
        let cands = idx.candidates(&base);
        assert!(cands.contains(&1), "high-overlap set must be a candidate");
        assert!(!cands.contains(&2), "disjoint set should not collide");
    }

    #[test]
    fn threshold_formula() {
        let idx = LshIndex::new(16, 4);
        let t = idx.threshold();
        assert!((t - (1.0f64 / 16.0).powf(0.25)).abs() < 1e-12);
        assert!(t > 0.4 && t < 0.6);
    }

    #[test]
    fn recall_of_high_similarity_pairs_is_high() {
        // statistical: sets with J ≈ 0.8 should almost always collide with
        // 16 bands × 4 rows (threshold ≈ 0.5)
        let mh = MinHasher::new(64, 11);
        let mut hits = 0;
        for trial in 0..50 {
            let mut idx = LshIndex::new(16, 4);
            let a = sig(&mh, (0..100).map(|i| format!("t{trial}_v{i}")));
            let b = sig(&mh, (11..100).map(|i| format!("t{trial}_v{i}")));
            idx.insert(1, &a);
            if idx.candidates(&b).contains(&1) {
                hits += 1;
            }
        }
        assert!(
            hits >= 45,
            "J≈0.89 pairs must nearly always collide: {hits}/50"
        );
    }

    #[test]
    #[should_panic(expected = "bands × rows")]
    fn wrong_signature_length_panics() {
        let mh = MinHasher::new(32, 7);
        let mut idx = LshIndex::new(16, 4); // expects 64
        let s = sig(&mh, (0..10).map(|i| format!("v{i}")));
        idx.insert(1, &s);
    }

    #[test]
    fn empty_index() {
        let mh = MinHasher::new(64, 7);
        let idx = LshIndex::new(16, 4);
        assert!(idx.is_empty());
        let s = sig(&mh, (0..10).map(|i| format!("v{i}")));
        assert!(idx.candidates(&s).is_empty());
    }
}
