//! MinHash signatures.
//!
//! SemProp's syntactic stage estimates value-set overlap with MinHash
//! (following Aurum's profile index). A signature is the element-wise
//! minimum of `k` independent hash permutations; the fraction of agreeing
//! components estimates the Jaccard similarity of the underlying sets.

use valentine_table::fxhash::hash_str;

/// A MinHash signature generator with `k` fixed permutations.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

/// A computed signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<u64>);

impl MinHasher {
    /// Creates a hasher with `k` permutations derived deterministically from
    /// `seed` via SplitMix64.
    pub fn new(k: usize, seed: u64) -> MinHasher {
        assert!(k > 0, "need at least one permutation");
        let mut state = seed;
        let seeds = (0..k)
            .map(|_| {
                // SplitMix64 step
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect();
        MinHasher { seeds }
    }

    /// Number of permutations.
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Computes the signature of a set of string items. An empty set yields
    /// the all-`u64::MAX` signature.
    pub fn signature<S: AsRef<str>, I: IntoIterator<Item = S>>(&self, items: I) -> Signature {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        for item in items {
            let h = hash_str(item.as_ref());
            for (slot, &seed) in sig.iter_mut().zip(&self.seeds) {
                // xor-multiply mix per permutation
                let v = (h ^ seed).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                if v < *slot {
                    *slot = v;
                }
            }
        }
        Signature(sig)
    }

    /// Estimated Jaccard similarity of two signatures.
    ///
    /// # Panics
    /// Panics if the signatures have different lengths (they came from
    /// hashers with different `k`).
    pub fn jaccard(&self, a: &Signature, b: &Signature) -> f64 {
        assert_eq!(a.0.len(), b.0.len(), "signatures must have equal length");
        assert_eq!(
            a.0.len(),
            self.seeds.len(),
            "signature does not match hasher"
        );
        let agree = a.0.iter().zip(&b.0).filter(|(x, y)| x == y).count();
        agree as f64 / self.seeds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let mh = MinHasher::new(128, 7);
        let a = mh.signature(set(&["x", "y", "z"]));
        let b = mh.signature(set(&["z", "y", "x"]));
        assert_eq!(mh.jaccard(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(256, 7);
        let a = mh.signature((0..100).map(|i| format!("a{i}")));
        let b = mh.signature((0..100).map(|i| format!("b{i}")));
        assert!(mh.jaccard(&a, &b) < 0.05);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let mh = MinHasher::new(512, 42);
        // |A ∩ B| = 50, |A ∪ B| = 150 → J = 1/3
        let a = mh.signature((0..100).map(|i| format!("v{i}")));
        let b = mh.signature((50..150).map(|i| format!("v{i}")));
        let est = mh.jaccard(&a, &b);
        assert!((est - 1.0 / 3.0).abs() < 0.08, "estimate {est}");
    }

    #[test]
    fn empty_set_signature() {
        let mh = MinHasher::new(16, 1);
        let empty = mh.signature(Vec::<String>::new());
        assert!(empty.0.iter().all(|&v| v == u64::MAX));
        // two empty sets agree fully (degenerate, acceptable)
        assert_eq!(mh.jaccard(&empty, &empty), 1.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = MinHasher::new(64, 9).signature(set(&["p", "q"]));
        let b = MinHasher::new(64, 9).signature(set(&["p", "q"]));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MinHasher::new(64, 1).signature(set(&["p", "q"]));
        let b = MinHasher::new(64, 2).signature(set(&["p", "q"]));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_signatures_panic() {
        let m1 = MinHasher::new(8, 1);
        let m2 = MinHasher::new(16, 1);
        let a = m1.signature(set(&["x"]));
        let b = m2.signature(set(&["x"]));
        let _ = m1.jaccard(&a, &b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_permutations_panic() {
        let _ = MinHasher::new(0, 1);
    }
}
