//! MinHash signatures.
//!
//! SemProp's syntactic stage estimates value-set overlap with MinHash
//! (following Aurum's profile index). A signature is the element-wise
//! minimum of `k` independent hash permutations; the fraction of agreeing
//! components estimates the Jaccard similarity of the underlying sets.
//!
//! # Kernel layout
//!
//! Signature generation is one of the hot kernels named by `trace report`
//! (index ingest hashes every distinct value of every column through `k`
//! permutations). The optimized path hashes all items **once** into a flat
//! `u64` buffer, then sweeps the permutations in fixed-width chunks of
//! [`LANES`] independent accumulators updated with branchless `min` — a
//! shape the autovectorizer turns into packed compare/select with the
//! per-chunk minima held in registers across the whole item stream, instead
//! of the reference's `k` load-compare-store round trips per item.
//!
//! [`MinHasher::signature_scalar`] retains the original scalar loop nest as
//! the equivalence baseline: both paths compute exactly the same `u64`
//! values (`min` is order-insensitive), which the proptest suite and the
//! `bench/kernels` floor-speedup guard both rely on.

use valentine_table::fxhash::hash_str;

/// Accumulator width of the chunked kernels. Eight `u64` lanes span two
/// AVX2 (or four SSE2 / NEON) registers, enough to hide the compare/select
/// latency without spilling.
const LANES: usize = 8;

/// The xor-multiply permutation mixer (same constant as the original
/// scalar implementation; both paths must agree bit-for-bit).
const MIX: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// A MinHash signature generator with `k` fixed permutations.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

/// A computed signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<u64>);

impl MinHasher {
    /// Creates a hasher with `k` permutations derived deterministically from
    /// `seed` via SplitMix64.
    pub fn new(k: usize, seed: u64) -> MinHasher {
        assert!(k > 0, "need at least one permutation");
        let mut state = seed;
        let seeds = (0..k)
            .map(|_| {
                // SplitMix64 step
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect();
        MinHasher { seeds }
    }

    /// Number of permutations.
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Computes the signature of a set of string items. An empty set yields
    /// the all-`u64::MAX` signature.
    pub fn signature<S: AsRef<str>, I: IntoIterator<Item = S>>(&self, items: I) -> Signature {
        let hashes: Vec<u64> = items.into_iter().map(|s| hash_str(s.as_ref())).collect();
        let mut sig = vec![u64::MAX; self.seeds.len()];
        self.signature_into(&hashes, &mut sig);
        Signature(sig)
    }

    /// Computes one signature per item set, reusing a single hash buffer
    /// across the whole batch. This is the ingest-path entry point: index
    /// builds and streaming profile updates hand every column of a table
    /// through here so the per-set allocation cost amortises away.
    pub fn signature_many<S, I, B>(&self, sets: B) -> Vec<Signature>
    where
        S: AsRef<str>,
        I: IntoIterator<Item = S>,
        B: IntoIterator<Item = I>,
    {
        let mut hashes: Vec<u64> = Vec::new();
        sets.into_iter()
            .map(|set| {
                hashes.clear();
                hashes.extend(set.into_iter().map(|s| hash_str(s.as_ref())));
                let mut sig = vec![u64::MAX; self.seeds.len()];
                self.signature_into(&hashes, &mut sig);
                Signature(sig)
            })
            .collect()
    }

    /// The signature kernel: fills `sig` with the element-wise minimum of
    /// every permutation over pre-hashed items. `sig.len()` must equal
    /// [`MinHasher::k`] (checked in debug builds only — this sits on the
    /// ingest hot path).
    pub fn signature_into(&self, hashes: &[u64], sig: &mut [u64]) {
        debug_assert_eq!(sig.len(), self.seeds.len(), "signature length mismatch");
        sig.fill(u64::MAX);
        if hashes.is_empty() {
            return;
        }
        let mut seed_chunks = self.seeds.chunks_exact(LANES);
        let mut sig_chunks = sig.chunks_exact_mut(LANES);
        for (seeds, slots) in (&mut seed_chunks).zip(&mut sig_chunks) {
            let mut acc = [u64::MAX; LANES];
            for &h in hashes {
                for l in 0..LANES {
                    let v = (h ^ seeds[l]).wrapping_mul(MIX);
                    acc[l] = acc[l].min(v);
                }
            }
            slots.copy_from_slice(&acc);
        }
        for (slot, &seed) in sig_chunks
            .into_remainder()
            .iter_mut()
            .zip(seed_chunks.remainder())
        {
            let mut min = u64::MAX;
            for &h in hashes {
                min = min.min((h ^ seed).wrapping_mul(MIX));
            }
            *slot = min;
        }
    }

    /// Retained scalar reference: the original per-item loop nest that
    /// re-reads and conditionally rewrites every signature slot per item.
    /// Kept (and exported) so the proptest equivalence suite and the
    /// `bench/kernels` guard always have the pre-vectorization baseline to
    /// compare against. Must not be "optimized" — its job is to stay slow
    /// and obviously correct.
    pub fn signature_scalar<S: AsRef<str>, I: IntoIterator<Item = S>>(
        &self,
        items: I,
    ) -> Signature {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        for item in items {
            let h = hash_str(item.as_ref());
            for (slot, &seed) in sig.iter_mut().zip(&self.seeds) {
                // xor-multiply mix per permutation
                let v = (h ^ seed).wrapping_mul(MIX);
                if v < *slot {
                    *slot = v;
                }
            }
        }
        Signature(sig)
    }

    /// Estimated Jaccard similarity of two signatures.
    ///
    /// # Panics
    /// In debug builds, panics if the signatures have different lengths or
    /// do not match this hasher's `k` (they came from hashers with a
    /// different configuration). Release builds skip the check — this is a
    /// re-rank hot path — so callers must uphold the same contract; a
    /// mismatched pair silently estimates over the shorter prefix.
    pub fn jaccard(&self, a: &Signature, b: &Signature) -> f64 {
        debug_assert_eq!(a.0.len(), b.0.len(), "signatures must have equal length");
        debug_assert_eq!(
            a.0.len(),
            self.seeds.len(),
            "signature does not match hasher"
        );
        agreement(&a.0, &b.0) as f64 / self.seeds.len() as f64
    }

    /// Retained scalar reference for [`MinHasher::jaccard`]: the original
    /// branchy filter-count. Same contract, checked eagerly.
    pub fn jaccard_scalar(&self, a: &Signature, b: &Signature) -> f64 {
        assert_eq!(a.0.len(), b.0.len(), "signatures must have equal length");
        assert_eq!(
            a.0.len(),
            self.seeds.len(),
            "signature does not match hasher"
        );
        let agree = a.0.iter().zip(&b.0).filter(|(x, y)| x == y).count();
        agree as f64 / self.seeds.len() as f64
    }
}

/// Number of agreeing components, accumulated branchlessly in [`LANES`]
/// independent counters so the comparison loop vectorizes to packed
/// compare + subtract.
fn agreement(a: &[u64], b: &[u64]) -> usize {
    let mut a_chunks = a.chunks_exact(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    let mut acc = [0usize; LANES];
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        for l in 0..LANES {
            acc[l] += (ca[l] == cb[l]) as usize;
        }
    }
    let mut total: usize = acc.iter().sum();
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        total += (x == y) as usize;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let mh = MinHasher::new(128, 7);
        let a = mh.signature(set(&["x", "y", "z"]));
        let b = mh.signature(set(&["z", "y", "x"]));
        assert_eq!(mh.jaccard(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(256, 7);
        let a = mh.signature((0..100).map(|i| format!("a{i}")));
        let b = mh.signature((0..100).map(|i| format!("b{i}")));
        assert!(mh.jaccard(&a, &b) < 0.05);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let mh = MinHasher::new(512, 42);
        // |A ∩ B| = 50, |A ∪ B| = 150 → J = 1/3
        let a = mh.signature((0..100).map(|i| format!("v{i}")));
        let b = mh.signature((50..150).map(|i| format!("v{i}")));
        let est = mh.jaccard(&a, &b);
        assert!((est - 1.0 / 3.0).abs() < 0.08, "estimate {est}");
    }

    #[test]
    fn empty_set_signature() {
        let mh = MinHasher::new(16, 1);
        let empty = mh.signature(Vec::<String>::new());
        assert!(empty.0.iter().all(|&v| v == u64::MAX));
        // two empty sets agree fully (degenerate, acceptable)
        assert_eq!(mh.jaccard(&empty, &empty), 1.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = MinHasher::new(64, 9).signature(set(&["p", "q"]));
        let b = MinHasher::new(64, 9).signature(set(&["p", "q"]));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MinHasher::new(64, 1).signature(set(&["p", "q"]));
        let b = MinHasher::new(64, 2).signature(set(&["p", "q"]));
        assert_ne!(a, b);
    }

    #[test]
    fn optimized_signature_matches_scalar_reference() {
        // exercise a k that is not a multiple of the lane width, so the
        // remainder path is covered too
        for k in [1, 7, 8, 9, 64, 100, 128] {
            let mh = MinHasher::new(k, 3);
            let items: Vec<String> = (0..50).map(|i| format!("item{i}")).collect();
            assert_eq!(mh.signature(&items), mh.signature_scalar(&items), "k={k}");
            let empty: Vec<String> = Vec::new();
            assert_eq!(mh.signature(&empty), mh.signature_scalar(&empty));
        }
    }

    #[test]
    fn jaccard_matches_scalar_reference() {
        for k in [1, 7, 9, 64, 127] {
            let mh = MinHasher::new(k, 11);
            let a = mh.signature((0..60).map(|i| format!("v{i}")));
            let b = mh.signature((30..90).map(|i| format!("v{i}")));
            assert_eq!(mh.jaccard(&a, &b), mh.jaccard_scalar(&a, &b), "k={k}");
        }
    }

    #[test]
    fn signature_many_matches_one_at_a_time() {
        let mh = MinHasher::new(96, 5);
        let sets: Vec<Vec<String>> = (0..6)
            .map(|s| (0..20 + s).map(|i| format!("s{s}v{i}")).collect())
            .collect();
        let batched = mh.signature_many(sets.iter().map(|s| s.iter()));
        for (sig, set) in batched.iter().zip(&sets) {
            assert_eq!(sig, &mh.signature(set));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "equal length")]
    fn mismatched_signatures_panic() {
        let m1 = MinHasher::new(8, 1);
        let m2 = MinHasher::new(16, 1);
        let a = m1.signature(set(&["x"]));
        let b = m2.signature(set(&["x"]));
        let _ = m1.jaccard(&a, &b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_permutations_panic() {
        let _ = MinHasher::new(0, 1);
    }
}
