//! Combinatorial and numeric kernels for schema matching.
//!
//! The matchers in Valentine reduce to a handful of classic optimisation
//! problems; this crate implements them from scratch:
//!
//! * [`emd`] — the Earth Mover's Distance used by the Distribution-based
//!   matcher [Zhang et al., SIGMOD'11], in both the exact 1-D
//!   (CDF difference) form and the general transportation form;
//! * [`assignment`] — Kuhn-Munkres (Hungarian) maximum-weight bipartite
//!   assignment, used to extract 1-1 matches from ranked score matrices;
//! * [`ilp`] — an exact 0-1 integer program solver (branch-and-bound over
//!   maximum-weight set packing) standing in for the PuLP/CPLEX step that
//!   decides the Distribution-based matcher's final clusters;
//! * [`minhash`] — MinHash signatures for the syntactic stage of SemProp;
//! * [`lsh`] — a MinHash-LSH banding index (the approximation layer the
//!   paper's conclusion points to for scaling instance-based matching);
//! * [`fixpoint`] — the sparse propagation fixpoint at the heart of
//!   Similarity Flooding, with the paper's formula variants A/B/C.

#![warn(missing_docs)]

pub mod assignment;
pub mod emd;
pub mod fixpoint;
pub mod ilp;
pub mod lsh;
pub mod minhash;

use std::fmt;

/// Errors raised by the numeric solvers on data-induced failures.
///
/// Matcher-computed costs and weights can turn non-finite (0/0
/// normalisations yield NaN even when every input value is finite); the
/// solvers refuse such inputs instead of panicking mid-run, so a single
/// poisoned column pair surfaces as a recorded error rather than aborting a
/// whole grid run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// An input cost, weight, or mass was NaN or infinite. The payload names
    /// the offending quantity.
    NonFinite(&'static str),
    /// The solver observed a spent deadline or an explicit cancel at one of
    /// its cooperative checkpoints and unwound early (see
    /// [`valentine_obs::cancel`]).
    Cancelled(valentine_obs::Cancelled),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NonFinite(what) => write!(f, "non-finite {what}"),
            SolverError::Cancelled(c) => write!(f, "solver cancelled: {c}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<valentine_obs::Cancelled> for SolverError {
    fn from(c: valentine_obs::Cancelled) -> SolverError {
        SolverError::Cancelled(c)
    }
}

pub use assignment::hungarian_max;
pub use emd::{
    emd_1d_normalized, emd_1d_normalized_scalar, emd_1d_quantiles, emd_1d_quantiles_scalar,
    emd_transportation,
};
pub use fixpoint::{FixpointFormula, PropagationGraph};
pub use ilp::max_weight_set_packing;
pub use lsh::LshIndex;
pub use minhash::MinHasher;
