//! Combinatorial and numeric kernels for schema matching.
//!
//! The matchers in Valentine reduce to a handful of classic optimisation
//! problems; this crate implements them from scratch:
//!
//! * [`emd`] — the Earth Mover's Distance used by the Distribution-based
//!   matcher [Zhang et al., SIGMOD'11], in both the exact 1-D
//!   (CDF difference) form and the general transportation form;
//! * [`assignment`] — Kuhn-Munkres (Hungarian) maximum-weight bipartite
//!   assignment, used to extract 1-1 matches from ranked score matrices;
//! * [`ilp`] — an exact 0-1 integer program solver (branch-and-bound over
//!   maximum-weight set packing) standing in for the PuLP/CPLEX step that
//!   decides the Distribution-based matcher's final clusters;
//! * [`minhash`] — MinHash signatures for the syntactic stage of SemProp;
//! * [`lsh`] — a MinHash-LSH banding index (the approximation layer the
//!   paper's conclusion points to for scaling instance-based matching);
//! * [`fixpoint`] — the sparse propagation fixpoint at the heart of
//!   Similarity Flooding, with the paper's formula variants A/B/C.

#![warn(missing_docs)]

pub mod assignment;
pub mod emd;
pub mod fixpoint;
pub mod ilp;
pub mod lsh;
pub mod minhash;

pub use assignment::hungarian_max;
pub use emd::{emd_1d_quantiles, emd_transportation};
pub use fixpoint::{FixpointFormula, PropagationGraph};
pub use ilp::max_weight_set_packing;
pub use lsh::LshIndex;
pub use minhash::MinHasher;
