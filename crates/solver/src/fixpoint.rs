//! Sparse fixpoint propagation — the computational core of Similarity
//! Flooding [Melnik, Garcia-Molina, Rahm; ICDE 2002].
//!
//! A propagation graph has one node per *map pair* (a, b) of elements from
//! the two schemata, an initial similarity σ⁰ per node, and weighted edges
//! that spread similarity between neighbouring pairs. The fixpoint
//! computation iterates one of the paper's formulas until the similarity
//! vector stops changing:
//!
//! | variant  | update                                    |
//! |----------|-------------------------------------------|
//! | `Basic`  | σ^{i+1} = normalize(σ^i + φ(σ^i))         |
//! | `A`      | σ^{i+1} = normalize(σ⁰ + φ(σ^i))          |
//! | `B`      | σ^{i+1} = normalize(φ(σ⁰ + σ^i))          |
//! | `C`      | σ^{i+1} = normalize(σ⁰ + σ^i + φ(σ⁰ + σ^i)) |
//!
//! where `φ(σ)[v] = Σ_{(u→v)} coeff(u→v) · σ[u]`, and `normalize` divides by
//! the maximum component. Valentine's configuration (Table II) fixes the
//! fix-point formula to **C** and the propagation coefficients to
//! `inverse_average` (handled by the caller when it builds the edges).

use crate::SolverError;
use valentine_obs::cancel;

/// Which update rule to iterate. The paper's evaluation uses [`FixpointFormula::C`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixpointFormula {
    /// σ^{i+1} = normalize(σ^i + φ(σ^i))
    Basic,
    /// σ^{i+1} = normalize(σ⁰ + φ(σ^i))
    A,
    /// σ^{i+1} = normalize(φ(σ⁰ + σ^i))
    B,
    /// σ^{i+1} = normalize(σ⁰ + σ^i + φ(σ⁰ + σ^i)) — the Valentine default.
    C,
}

/// Result of a fixpoint run.
#[derive(Debug, Clone)]
pub struct FixpointResult {
    /// Final similarity per node, normalised to `[0, 1]`.
    pub values: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// True when the residual dropped below the tolerance before the
    /// iteration cap.
    pub converged: bool,
}

/// A sparse propagation graph over `n` map-pair nodes.
#[derive(Debug, Clone)]
pub struct PropagationGraph {
    initial: Vec<f64>,
    /// CSR-ish edge list: (target, source, coefficient).
    edges: Vec<(u32, u32, f64)>,
}

impl PropagationGraph {
    /// Creates a graph with the given initial similarities σ⁰.
    pub fn new(initial: Vec<f64>) -> PropagationGraph {
        PropagationGraph {
            initial,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.initial.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
    }

    /// Adds a directed propagation edge `from → to` with the given
    /// coefficient.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, coeff: f64) {
        assert!(
            from < self.len() && to < self.len(),
            "edge endpoint out of range"
        );
        self.edges.push((to as u32, from as u32, coeff));
    }

    /// φ(σ): one propagation step.
    fn phi(&self, sigma: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        for &(to, from, coeff) in &self.edges {
            out[to as usize] += coeff * sigma[from as usize];
        }
    }

    /// Runs the fixpoint iteration until the Euclidean residual between
    /// successive normalised vectors drops below `eps`, or `max_iters` is
    /// reached.
    ///
    /// # Errors
    /// Returns [`SolverError::Cancelled`] when the thread's cancellation
    /// token fires at the per-sweep checkpoint (each sweep is O(nodes +
    /// edges), so a deadline stops the flooding within one sweep).
    pub fn run(
        &self,
        formula: FixpointFormula,
        max_iters: usize,
        eps: f64,
    ) -> Result<FixpointResult, SolverError> {
        let n = self.len();
        if n == 0 {
            return Ok(FixpointResult {
                values: Vec::new(),
                iterations: 0,
                converged: true,
            });
        }
        let sigma0 = {
            let mut s = self.initial.clone();
            normalize(&mut s);
            s
        };
        let mut sigma = sigma0.clone();
        let mut phi_buf = vec![0.0; n];
        let mut work = vec![0.0; n];

        let mut iterations = 0;
        let mut converged = false;
        while iterations < max_iters {
            cancel::checkpoint()?;
            iterations += 1;
            match formula {
                FixpointFormula::Basic => {
                    self.phi(&sigma, &mut phi_buf);
                    for i in 0..n {
                        work[i] = sigma[i] + phi_buf[i];
                    }
                }
                FixpointFormula::A => {
                    self.phi(&sigma, &mut phi_buf);
                    for i in 0..n {
                        work[i] = sigma0[i] + phi_buf[i];
                    }
                }
                FixpointFormula::B => {
                    for i in 0..n {
                        work[i] = sigma0[i] + sigma[i];
                    }
                    // reuse work as φ input, output into phi_buf
                    self.phi(&work, &mut phi_buf);
                    work.copy_from_slice(&phi_buf);
                }
                FixpointFormula::C => {
                    for i in 0..n {
                        work[i] = sigma0[i] + sigma[i];
                    }
                    self.phi(&work, &mut phi_buf);
                    for i in 0..n {
                        work[i] += phi_buf[i];
                    }
                }
            }
            normalize(&mut work);
            let residual: f64 = work
                .iter()
                .zip(&sigma)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt();
            sigma.copy_from_slice(&work);
            if residual < eps {
                converged = true;
                break;
            }
        }
        Ok(FixpointResult {
            values: sigma,
            iterations,
            converged,
        })
    }
}

/// Divides by the maximum component (the SF paper's normalisation); a zero
/// vector stays zero.
fn normalize(v: &mut [f64]) {
    let max = v.iter().copied().fold(0.0f64, f64::max);
    if max > 0.0 {
        v.iter_mut().for_each(|x| *x /= max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = PropagationGraph::new(vec![]);
        let r = g.run(FixpointFormula::C, 10, 1e-9).unwrap();
        assert!(r.values.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn isolated_nodes_keep_relative_order() {
        let g = PropagationGraph::new(vec![0.2, 0.8, 0.5]);
        let r = g.run(FixpointFormula::C, 100, 1e-9).unwrap();
        assert!(r.converged);
        assert!(r.values[1] > r.values[2]);
        assert!(r.values[2] > r.values[0]);
        assert_eq!(r.values[1], 1.0, "max normalised to 1");
    }

    #[test]
    fn propagation_boosts_connected_nodes() {
        // Node 2 starts at 0 but receives similarity from node 1.
        let mut g = PropagationGraph::new(vec![0.0, 1.0, 0.0]);
        g.add_edge(1, 2, 1.0);
        let r = g.run(FixpointFormula::C, 200, 1e-12).unwrap();
        assert!(
            r.values[2] > 0.5,
            "neighbour of a strong node must rise: {:?}",
            r.values
        );
        assert!(r.values[0] < 1e-6, "isolated zero node stays zero");
    }

    #[test]
    fn symmetric_pair_converges_to_equal_values() {
        let mut g = PropagationGraph::new(vec![0.5, 0.5]);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        let r = g.run(FixpointFormula::C, 500, 1e-12).unwrap();
        assert!(r.converged);
        assert!((r.values[0] - r.values[1]).abs() < 1e-9);
    }

    #[test]
    fn all_formulas_terminate_and_stay_bounded() {
        let mut g = PropagationGraph::new(vec![0.9, 0.1, 0.4, 0.0]);
        g.add_edge(0, 1, 0.5);
        g.add_edge(1, 0, 0.5);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 2, 1.0);
        for f in [
            FixpointFormula::Basic,
            FixpointFormula::A,
            FixpointFormula::B,
            FixpointFormula::C,
        ] {
            let r = g.run(f, 1000, 1e-10).unwrap();
            for v in &r.values {
                assert!((0.0..=1.0).contains(v), "{f:?} out of bounds: {v}");
            }
            assert!(r.iterations >= 1);
        }
    }

    #[test]
    fn formula_c_uses_initial_values_as_anchor() {
        // With formula Basic the initial signal can wash out completely;
        // with C, σ⁰ keeps contributing each round.
        let mut g = PropagationGraph::new(vec![1.0, 0.0]);
        g.add_edge(0, 1, 0.5);
        g.add_edge(1, 0, 0.5);
        let c = g.run(FixpointFormula::C, 300, 1e-12).unwrap();
        assert!(
            c.values[0] > c.values[1],
            "σ⁰ must keep node 0 ahead: {:?}",
            c.values
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_checked() {
        let mut g = PropagationGraph::new(vec![0.0]);
        g.add_edge(0, 5, 1.0);
    }

    #[test]
    fn iteration_cap_respected() {
        let mut g = PropagationGraph::new(vec![0.1, 0.9]);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        let r = g.run(FixpointFormula::Basic, 3, 0.0).unwrap(); // eps 0 → never converges
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }
}
