//! Earth Mover's Distance.
//!
//! The Distribution-based matcher compares columns by the EMD between their
//! value distributions. Two forms are provided:
//!
//! * [`emd_1d_quantiles`] — the exact EMD between two 1-D distributions
//!   represented as equal-length quantile sketches. For 1-D distributions
//!   with equal total mass, EMD equals the L1 distance between the inverse
//!   CDFs, which the quantile sketch approximates as a mean of absolute
//!   quantile differences.
//! * [`emd_transportation`] — the general EMD between two weighted point
//!   sets with an arbitrary ground-distance matrix, solved exactly with the
//!   transportation simplex (Vogel initialisation + MODI improvement). Used
//!   for categorical histograms where positions are value frequencies.

use crate::SolverError;
use valentine_obs::cancel;

/// Accumulator width of the chunked 1-D kernels: eight `f64` lanes keep two
/// AVX2 registers of independent partial sums, so the reduction has no
/// serial dependency chain and the autovectorizer emits packed adds.
const LANES: usize = 8;

/// Exact 1-D EMD between two equal-length quantile sketches: the mean
/// absolute difference between corresponding quantiles.
///
/// Sketches are equi-depth samples of the inverse CDF (a prefix-sum view of
/// the distribution), so `mean |Qa(i) − Qb(i)|` is the Wasserstein-1
/// distance between the sketched distributions. The sum runs over flat
/// `f64` chunks with [`LANES`] independent partial accumulators; the lane
/// split reassociates the floating-point sum, so results may differ from
/// [`emd_1d_quantiles_scalar`] by a few ulps (≤ 1e-9 relative, asserted by
/// the proptest equivalence suite).
///
/// # Panics
/// Panics if the sketches have different lengths.
pub fn emd_1d_quantiles(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "quantile sketches must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    abs_diff_sum(a, b) / a.len() as f64
}

/// Retained scalar reference for [`emd_1d_quantiles`]: the original
/// strictly-sequential sum. Kept as the equivalence and floor-speedup
/// baseline for the proptest suite and `bench/kernels` guard.
pub fn emd_1d_quantiles_scalar(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "quantile sketches must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    let total: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    total / a.len() as f64
}

/// Normalised 1-D EMD: divides by the spread of the union of both sketches,
/// mapping into `[0, 1]` so a single threshold works across columns of very
/// different magnitudes (the Distribution-based paper normalises the same
/// way before thresholding). The min and max of both sketches come from one
/// fused chunked pass instead of two separate folds.
pub fn emd_1d_normalized(a: &[f64], b: &[f64]) -> f64 {
    let raw = emd_1d_quantiles(a, b);
    if raw == 0.0 {
        return 0.0;
    }
    let (lo_a, hi_a) = min_max(a);
    let (lo_b, hi_b) = min_max(b);
    let spread = hi_a.max(hi_b) - lo_a.min(lo_b);
    if spread <= 0.0 {
        0.0
    } else {
        (raw / spread).min(1.0)
    }
}

/// Retained scalar reference for [`emd_1d_normalized`] (sequential sum and
/// two separate min/max folds, as originally written).
pub fn emd_1d_normalized_scalar(a: &[f64], b: &[f64]) -> f64 {
    let raw = emd_1d_quantiles_scalar(a, b);
    if raw == 0.0 {
        return 0.0;
    }
    let lo = a.iter().chain(b).copied().fold(f64::INFINITY, f64::min);
    let hi = a.iter().chain(b).copied().fold(f64::NEG_INFINITY, f64::max);
    let spread = hi - lo;
    if spread <= 0.0 {
        0.0
    } else {
        (raw / spread).min(1.0)
    }
}

/// `Σ |a[i] − b[i]|` with [`LANES`] independent partial sums.
fn abs_diff_sum(a: &[f64], b: &[f64]) -> f64 {
    let mut a_chunks = a.chunks_exact(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        for l in 0..LANES {
            acc[l] += (ca[l] - cb[l]).abs();
        }
    }
    let mut total: f64 = acc.iter().sum();
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        total += (x - y).abs();
    }
    total
}

/// Fused `(min, max)` of a slice in one chunked pass. Empty input yields
/// `(∞, −∞)`, the fold identities.
fn min_max(v: &[f64]) -> (f64, f64) {
    let mut chunks = v.chunks_exact(LANES);
    let mut lo = [f64::INFINITY; LANES];
    let mut hi = [f64::NEG_INFINITY; LANES];
    for c in &mut chunks {
        for l in 0..LANES {
            lo[l] = lo[l].min(c[l]);
            hi[l] = hi[l].max(c[l]);
        }
    }
    let mut min = lo.iter().copied().fold(f64::INFINITY, f64::min);
    let mut max = hi.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for &x in chunks.remainder() {
        min = min.min(x);
        max = max.max(x);
    }
    (min, max)
}

/// Exact EMD between two discrete distributions with supply `a`, demand `b`
/// (not necessarily normalised; they are rescaled to equal mass), and ground
/// distance `dist[i][j]`.
///
/// Solved as a balanced transportation problem: Vogel's approximation for
/// the initial basic feasible solution, then MODI (u-v) iterations until no
/// negative reduced cost remains. Supports up to a few hundred points —
/// plenty for the frequency histograms the matchers produce.
///
/// Returns the minimal total work divided by total mass (i.e. the true EMD).
///
/// # Errors
/// Returns [`SolverError::NonFinite`] when a mass or a ground-distance cell
/// is NaN or infinite — the simplex pivots on cost comparisons that are
/// meaningless on such inputs. Returns [`SolverError::Cancelled`] when the
/// thread's cancellation token fires at one of the per-pivot checkpoints.
///
/// # Panics
/// Panics if dimensions disagree or all masses are zero.
pub fn emd_transportation(a: &[f64], b: &[f64], dist: &[Vec<f64>]) -> Result<f64, SolverError> {
    assert_eq!(dist.len(), a.len(), "distance rows must match supply");
    for row in dist {
        assert_eq!(row.len(), b.len(), "distance cols must match demand");
    }
    if a.iter().chain(b).any(|x| !x.is_finite()) {
        return Err(SolverError::NonFinite("mass"));
    }
    if dist.iter().flatten().any(|c| !c.is_finite()) {
        return Err(SolverError::NonFinite("ground-distance cost"));
    }
    let mass_a: f64 = a.iter().sum();
    let mass_b: f64 = b.iter().sum();
    assert!(mass_a > 0.0 && mass_b > 0.0, "distributions must have mass");

    // Rescale to common mass 1.0.
    let supply: Vec<f64> = a.iter().map(|x| x / mass_a).collect();
    let demand: Vec<f64> = b.iter().map(|x| x / mass_b).collect();

    let flow = transportation_simplex(&supply, &demand, dist)?;
    Ok(flow
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(|(j, &f)| f * dist[i][j])
                .sum::<f64>()
        })
        .sum())
}

const EPS: f64 = 1e-12;

/// Solves the balanced transportation problem, returning the optimal flow
/// matrix. Small dense implementation: Vogel start + MODI improvement.
fn transportation_simplex(
    supply: &[f64],
    demand: &[f64],
    cost: &[Vec<f64>],
) -> Result<Vec<Vec<f64>>, SolverError> {
    let n = supply.len();
    let m = demand.len();
    let mut s = supply.to_vec();
    let mut d = demand.to_vec();
    let mut flow = vec![vec![0.0; m]; n];
    // `basis[i][j]` marks basic cells (spanning tree of the transport graph).
    let mut basis = vec![vec![false; m]; n];

    // --- North-west-corner-with-minimum-cost start (simpler than full
    // Vogel, still a valid BFS; MODI does the optimising work).
    let mut cells: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..m).map(move |j| (i, j))).collect();
    cells.sort_by(|&(i1, j1), &(i2, j2)| cost[i1][j1].total_cmp(&cost[i2][j2]));
    let mut placed = 0usize;
    for (i, j) in cells {
        if s[i] > EPS && d[j] > EPS {
            let q = s[i].min(d[j]);
            flow[i][j] = q;
            basis[i][j] = true;
            placed += 1;
            s[i] -= q;
            d[j] -= q;
        }
    }
    // Ensure the basis forms a spanning tree (n + m − 1 basic cells); add
    // degenerate zero-flow cells if needed.
    let needed = n + m - 1;
    'outer: while placed < needed {
        for i in 0..n {
            for j in 0..m {
                if !basis[i][j] && !creates_cycle(&basis, i, j, n, m) {
                    basis[i][j] = true;
                    placed += 1;
                    continue 'outer;
                }
            }
        }
        break; // fully degenerate; accept
    }

    // --- MODI iterations. Each pivot is O(nm); check the cancellation
    // token once per pivot so a stuck solve unwinds within one iteration.
    for _ in 0..10_000 {
        cancel::checkpoint()?;
        let (u, v) = compute_potentials(&basis, cost, n, m);
        // Find the most negative reduced cost among non-basic cells.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            for j in 0..m {
                if basis[i][j] {
                    continue;
                }
                let rc = cost[i][j] - u[i] - v[j];
                if rc < -1e-9 && best.is_none_or(|(.., b)| rc < b) {
                    best = Some((i, j, rc));
                }
            }
        }
        let Some((ei, ej, _)) = best else { break };
        // Find the unique cycle the entering cell creates in the basis tree.
        let cycle = find_cycle(&basis, ei, ej, n, m);
        // Max flow shift = min flow on the "minus" positions of the cycle.
        let theta = cycle
            .iter()
            .skip(1)
            .step_by(2)
            .map(|&(i, j)| flow[i][j])
            .fold(f64::INFINITY, f64::min);
        // Apply the shift.
        for (k, &(i, j)) in cycle.iter().enumerate() {
            if k % 2 == 0 {
                flow[i][j] += theta;
            } else {
                flow[i][j] -= theta;
            }
        }
        basis[ei][ej] = true;
        // Remove one emptied minus-cell from the basis (keep tree size).
        if let Some(&(ri, rj)) = cycle
            .iter()
            .skip(1)
            .step_by(2)
            .find(|&&(i, j)| flow[i][j] <= EPS)
        {
            basis[ri][rj] = false;
            flow[ri][rj] = 0.0;
        }
    }
    Ok(flow)
}

/// Computes dual potentials (u, v) with u[0] = 0 over the basis tree.
fn compute_potentials(
    basis: &[Vec<bool>],
    cost: &[Vec<f64>],
    n: usize,
    m: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut u = vec![f64::NAN; n];
    let mut v = vec![f64::NAN; m];
    u[0] = 0.0;
    // Iteratively propagate; the basis is a tree so this terminates.
    for _ in 0..n + m {
        let mut progressed = false;
        for i in 0..n {
            for j in 0..m {
                if !basis[i][j] {
                    continue;
                }
                match (u[i].is_nan(), v[j].is_nan()) {
                    (false, true) => {
                        v[j] = cost[i][j] - u[i];
                        progressed = true;
                    }
                    (true, false) => {
                        u[i] = cost[i][j] - v[j];
                        progressed = true;
                    }
                    _ => {}
                }
            }
        }
        if !progressed {
            break;
        }
    }
    // Disconnected components (degenerate): pin their potentials to zero.
    for x in u.iter_mut() {
        if x.is_nan() {
            *x = 0.0;
        }
    }
    for x in v.iter_mut() {
        if x.is_nan() {
            *x = 0.0;
        }
    }
    (u, v)
}

/// True if adding cell (i, j) to the basis would close a cycle, i.e. row i
/// and column j are already connected in the basis graph.
fn creates_cycle(basis: &[Vec<bool>], ci: usize, cj: usize, n: usize, m: usize) -> bool {
    // BFS from row node ci to column node cj over basic cells.
    let mut row_seen = vec![false; n];
    let mut col_seen = vec![false; m];
    let mut stack = vec![(true, ci)];
    row_seen[ci] = true;
    while let Some((is_row, idx)) = stack.pop() {
        if is_row {
            for j in 0..m {
                if basis[idx][j] && !col_seen[j] {
                    if j == cj {
                        return true;
                    }
                    col_seen[j] = true;
                    stack.push((false, j));
                }
            }
        } else {
            for i in 0..n {
                if basis[i][idx] && !row_seen[i] {
                    row_seen[i] = true;
                    stack.push((true, i));
                }
            }
        }
    }
    false
}

/// Finds the alternating cycle created by adding (ei, ej): the path from row
/// ei to column ej through the basis tree, prefixed by the entering cell.
/// Cells alternate +, −, +, − starting with the entering cell (+).
fn find_cycle(
    basis: &[Vec<bool>],
    ei: usize,
    ej: usize,
    n: usize,
    m: usize,
) -> Vec<(usize, usize)> {
    // DFS over the bipartite basis graph from row `ei` to column `ej`,
    // recording the cells walked. Nodes: rows 0..n, cols n..n+m.
    let target = n + ej;
    let mut parent: Vec<Option<(usize, (usize, usize))>> = vec![None; n + m];
    let mut visited = vec![false; n + m];
    visited[ei] = true;
    let mut stack = vec![ei];
    while let Some(node) = stack.pop() {
        if node == target {
            break;
        }
        if node < n {
            let i = node;
            for j in 0..m {
                if basis[i][j] && !visited[n + j] {
                    visited[n + j] = true;
                    parent[n + j] = Some((node, (i, j)));
                    stack.push(n + j);
                }
            }
        } else {
            let j = node - n;
            for i in 0..n {
                if basis[i][j] && !visited[i] {
                    visited[i] = true;
                    parent[i] = Some((node, (i, j)));
                    stack.push(i);
                }
            }
        }
    }
    // Reconstruct path of cells from target back to ei.
    let mut cells_rev = Vec::new();
    let mut cur = target;
    while cur != ei {
        let (prev, cell) = parent[cur].expect("row and column are connected in the basis tree");
        cells_rev.push(cell);
        cur = prev;
    }
    let mut cycle = vec![(ei, ej)];
    cycle.extend(cells_rev);
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sketches_have_zero_emd() {
        let q = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(emd_1d_quantiles(&q, &q), 0.0);
        assert_eq!(emd_1d_normalized(&q, &q), 0.0);
    }

    #[test]
    fn shifted_distribution_emd_equals_shift() {
        let a = vec![0.0, 1.0, 2.0, 3.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert!((emd_1d_quantiles(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_emd_bounded() {
        let a = vec![0.0, 0.0, 0.0];
        let b = vec![100.0, 100.0, 100.0];
        let d = emd_1d_normalized(&a, &b);
        assert!((0.0..=1.0).contains(&d));
        assert_eq!(d, 1.0);
    }

    #[test]
    fn normalized_emd_constant_identical() {
        // Both sketches a single repeated constant: zero spread, zero EMD.
        assert_eq!(emd_1d_normalized(&[3.0, 3.0], &[3.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_sketches_panic() {
        let _ = emd_1d_quantiles(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn chunked_kernels_match_scalar_reference() {
        // lengths straddling the lane width, including the empty sketch
        for n in [0usize, 1, 7, 8, 9, 31, 32, 64, 100] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos() * 7.0).collect();
            let (fast, slow) = (emd_1d_quantiles(&a, &b), emd_1d_quantiles_scalar(&a, &b));
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "n={n}: {fast} vs {slow}"
            );
            let (fast, slow) = (emd_1d_normalized(&a, &b), emd_1d_normalized_scalar(&a, &b));
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "n={n} normalized: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn transportation_identity() {
        let a = vec![0.5, 0.5];
        let dist = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(emd_transportation(&a, &a, &dist).unwrap().abs() < 1e-9);
    }

    #[test]
    fn transportation_total_shift() {
        // All mass at point 0 vs all mass at point 1, distance 3 apart.
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let dist = vec![vec![0.0, 3.0], vec![3.0, 0.0]];
        // b has zero supply at index 0 — rescaling keeps the math valid.
        let d = emd_transportation(&a, &b, &dist).unwrap();
        assert!((d - 3.0).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn transportation_known_optimum() {
        // Classic 2x3 example.
        let supply = vec![0.6, 0.4];
        let demand = vec![0.5, 0.3, 0.2];
        let cost = vec![vec![1.0, 2.0, 3.0], vec![4.0, 1.0, 2.0]];
        let d = emd_transportation(&supply, &demand, &cost).unwrap();
        // Optimal: 0.5→(0,0)@1 + 0.1→(0,1)@2 + 0.2→(1,1)@1 + 0.2→(1,2)@2
        let expected = 0.5 + 0.2 + 0.2 + 0.4;
        assert!((d - expected).abs() < 1e-9, "got {d}, expected {expected}");
    }

    #[test]
    fn transportation_matches_1d_on_point_masses() {
        // Supports at positions p = [0, 1, 2] with uniform masses; shifting
        // everything by +1 must cost exactly 1.
        let positions_a = [0.0f64, 1.0, 2.0];
        let positions_b = [1.0f64, 2.0, 3.0];
        let a = vec![1.0 / 3.0; 3];
        let dist: Vec<Vec<f64>> = positions_a
            .iter()
            .map(|&x| positions_b.iter().map(|&y| (x - y).abs()).collect())
            .collect();
        let d = emd_transportation(&a, &a.clone(), &dist).unwrap();
        assert!((d - 1.0).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn transportation_is_symmetric() {
        let a = vec![0.7, 0.2, 0.1];
        let b = vec![0.2, 0.3, 0.5];
        let dist = vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 1.0],
            vec![2.0, 1.0, 0.0],
        ];
        let dt: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..3).map(|j| dist[j][i]).collect())
            .collect();
        let ab = emd_transportation(&a, &b, &dist).unwrap();
        let ba = emd_transportation(&b, &a, &dt).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mass")]
    fn transportation_rejects_zero_mass() {
        let _ = emd_transportation(&[0.0], &[1.0], &[vec![0.0]]);
    }

    #[test]
    fn transportation_rejects_non_finite_inputs() {
        // A NaN cost cell — e.g. a 0/0-normalised histogram distance — must
        // surface as an error, not poison the simplex pivots.
        assert_eq!(
            emd_transportation(&[1.0], &[1.0], &[vec![f64::NAN]]),
            Err(SolverError::NonFinite("ground-distance cost"))
        );
        assert_eq!(
            emd_transportation(&[f64::NAN], &[1.0], &[vec![0.0]]),
            Err(SolverError::NonFinite("mass"))
        );
        assert_eq!(
            emd_transportation(&[1.0], &[f64::INFINITY], &[vec![0.0]]),
            Err(SolverError::NonFinite("mass"))
        );
    }
}
