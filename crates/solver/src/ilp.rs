//! A small exact 0-1 integer-program solver.
//!
//! The Distribution-based matcher's final step "decides the final clusters"
//! by solving an integer program (the paper's authors used PuLP in place of
//! IBM CPLEX; we substitute our own solver). The program is a
//! **maximum-weight set packing**: from a pool of candidate clusters, select
//! a subset of pairwise-disjoint clusters maximising total weight:
//!
//! ```text
//! max  Σ w_c · x_c
//! s.t. Σ_{c ∋ item} x_c ≤ 1   for every item
//!      x_c ∈ {0, 1}
//! ```
//!
//! Solved exactly by depth-first branch-and-bound with a fractional
//! relaxation bound; a greedy fallback kicks in beyond
//! [`EXACT_CANDIDATE_LIMIT`] candidates (and is noted in the result).

use crate::SolverError;
use valentine_obs::cancel;

/// A candidate set with its weight.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Item indices the candidate covers (deduplicated internally).
    pub items: Vec<usize>,
    /// Objective weight (only positive-weight candidates are ever selected).
    pub weight: f64,
}

/// The outcome of the packing.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    /// Indices into the candidate slice, in ascending order.
    pub chosen: Vec<usize>,
    /// Total weight of the chosen candidates.
    pub weight: f64,
    /// True if the exact branch-and-bound ran; false if the instance was too
    /// large and the greedy fallback produced the answer.
    pub exact: bool,
}

/// Instances up to this many candidates are solved exactly.
pub const EXACT_CANDIDATE_LIMIT: usize = 24;

/// Solves maximum-weight set packing over `candidates`.
///
/// Candidates with non-positive weight or no items are never chosen.
///
/// # Errors
/// Returns [`SolverError::NonFinite`] when any candidate weight is NaN or
/// infinite — the branch-and-bound's pruning bound is meaningless on such
/// inputs, so they are rejected up front instead of corrupting the packing.
/// Returns [`SolverError::Cancelled`] when the thread's cancellation token
/// fires at one of the branch-and-bound's per-256-node checkpoints (the
/// search tree is exponential in the worst case, so this is the one kernel
/// where a deadline matters most).
pub fn max_weight_set_packing(candidates: &[Candidate]) -> Result<Packing, SolverError> {
    if candidates.iter().any(|c| !c.weight.is_finite()) {
        return Err(SolverError::NonFinite("candidate weight"));
    }
    // Normalise: sort candidate order by weight density for better pruning.
    let mut order: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].weight > 0.0 && !candidates[i].items.is_empty())
        .collect();
    order.sort_by(|&a, &b| candidates[b].weight.total_cmp(&candidates[a].weight));

    if order.len() > EXACT_CANDIDATE_LIMIT {
        return Ok(greedy(candidates, &order));
    }
    branch_and_bound(candidates, &order)
}

fn conflict(a: &[usize], b: &[usize]) -> bool {
    // Candidate item lists are tiny (columns of one cluster); O(|a|·|b|)
    // beats building hash sets.
    a.iter().any(|x| b.contains(x))
}

fn greedy(candidates: &[Candidate], order: &[usize]) -> Packing {
    let mut chosen = Vec::new();
    let mut used: Vec<usize> = Vec::new();
    let mut weight = 0.0;
    for &c in order {
        if !conflict(&candidates[c].items, &used) {
            used.extend_from_slice(&candidates[c].items);
            weight += candidates[c].weight;
            chosen.push(c);
        }
    }
    chosen.sort_unstable();
    Packing {
        chosen,
        weight,
        exact: false,
    }
}

/// How many search-tree nodes between cancellation checks: frequent enough
/// to bound overshoot to microseconds, rare enough to stay off the profile.
const CANCEL_CHECK_NODES: u64 = 256;

fn branch_and_bound(candidates: &[Candidate], order: &[usize]) -> Result<Packing, SolverError> {
    // Suffix sums of weights give an (admissible, loose) upper bound.
    let mut suffix = vec![0.0; order.len() + 1];
    for k in (0..order.len()).rev() {
        suffix[k] = suffix[k + 1] + candidates[order[k]].weight;
    }

    struct State<'a> {
        candidates: &'a [Candidate],
        order: &'a [usize],
        suffix: &'a [f64],
        best_weight: f64,
        best_set: Vec<usize>,
        nodes: u64,
    }

    fn recurse(
        st: &mut State<'_>,
        k: usize,
        current: &mut Vec<usize>,
        used: &mut Vec<usize>,
        weight: f64,
    ) -> Result<(), SolverError> {
        st.nodes += 1;
        if st.nodes.is_multiple_of(CANCEL_CHECK_NODES) {
            cancel::checkpoint()?;
        }
        if weight > st.best_weight {
            st.best_weight = weight;
            st.best_set = current.clone();
        }
        if k == st.order.len() || weight + st.suffix[k] <= st.best_weight {
            return Ok(());
        }
        let c = st.order[k];
        // Branch 1: take candidate k if feasible.
        if !conflict(&st.candidates[c].items, used) {
            let before = used.len();
            used.extend_from_slice(&st.candidates[c].items);
            current.push(c);
            recurse(st, k + 1, current, used, weight + st.candidates[c].weight)?;
            current.pop();
            used.truncate(before);
        }
        // Branch 2: skip it.
        recurse(st, k + 1, current, used, weight)
    }

    let mut st = State {
        candidates,
        order,
        suffix: &suffix,
        best_weight: 0.0,
        best_set: Vec::new(),
        nodes: 0,
    };
    let mut current = Vec::new();
    let mut used = Vec::new();
    recurse(&mut st, 0, &mut current, &mut used, 0.0)?;

    let mut chosen = st.best_set;
    chosen.sort_unstable();
    Ok(Packing {
        chosen,
        weight: st.best_weight,
        exact: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(items: &[usize], weight: f64) -> Candidate {
        Candidate {
            items: items.to_vec(),
            weight,
        }
    }

    #[test]
    fn empty_input() {
        let p = max_weight_set_packing(&[]).unwrap();
        assert!(p.chosen.is_empty());
        assert_eq!(p.weight, 0.0);
        assert!(p.exact);
    }

    #[test]
    fn single_candidate() {
        let p = max_weight_set_packing(&[cand(&[0, 1], 2.5)]).unwrap();
        assert_eq!(p.chosen, vec![0]);
        assert_eq!(p.weight, 2.5);
    }

    #[test]
    fn disjoint_candidates_all_chosen() {
        let p =
            max_weight_set_packing(&[cand(&[0], 1.0), cand(&[1], 1.0), cand(&[2], 1.0)]).unwrap();
        assert_eq!(p.chosen, vec![0, 1, 2]);
        assert_eq!(p.weight, 3.0);
    }

    #[test]
    fn greedy_trap_is_solved_exactly() {
        // Greedy takes the heavy middle candidate (3.0) and blocks both side
        // candidates (2.0 + 2.0 = 4.0 > 3.0).
        let cands = [cand(&[0, 1], 3.0), cand(&[0], 2.0), cand(&[1], 2.0)];
        let p = max_weight_set_packing(&cands).unwrap();
        assert!(p.exact);
        assert_eq!(p.weight, 4.0);
        assert_eq!(p.chosen, vec![1, 2]);
    }

    #[test]
    fn non_positive_and_empty_candidates_ignored() {
        let cands = [cand(&[0], -1.0), cand(&[], 5.0), cand(&[0], 1.0)];
        let p = max_weight_set_packing(&cands).unwrap();
        assert_eq!(p.chosen, vec![2]);
        assert_eq!(p.weight, 1.0);
    }

    #[test]
    fn overlapping_chain() {
        // 0-1, 1-2, 2-3 with weights 2, 3, 2: optimum is {0-1, 2-3} = 4.
        let cands = [cand(&[0, 1], 2.0), cand(&[1, 2], 3.0), cand(&[2, 3], 2.0)];
        let p = max_weight_set_packing(&cands).unwrap();
        assert_eq!(p.weight, 4.0);
        assert_eq!(p.chosen, vec![0, 2]);
    }

    #[test]
    fn large_instance_uses_greedy() {
        let cands: Vec<Candidate> = (0..EXACT_CANDIDATE_LIMIT + 10)
            .map(|i| cand(&[i], 1.0))
            .collect();
        let p = max_weight_set_packing(&cands).unwrap();
        assert!(!p.exact);
        assert_eq!(p.chosen.len(), EXACT_CANDIDATE_LIMIT + 10);
    }

    #[test]
    fn non_finite_weights_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let cands = [cand(&[0], 1.0), cand(&[1], bad)];
            assert_eq!(
                max_weight_set_packing(&cands),
                Err(SolverError::NonFinite("candidate weight"))
            );
        }
    }

    #[test]
    fn exact_matches_greedy_on_disjoint_instances() {
        // On disjoint instances greedy is optimal too — sanity cross-check.
        let cands: Vec<Candidate> = (0..10).map(|i| cand(&[i], (i + 1) as f64)).collect();
        let exact = max_weight_set_packing(&cands).unwrap();
        let order: Vec<usize> = (0..10).collect();
        let g = greedy(&cands, &order);
        assert_eq!(exact.weight, g.weight);
    }

    #[test]
    fn chosen_sets_are_disjoint() {
        let cands = [
            cand(&[0, 1, 2], 5.0),
            cand(&[2, 3], 4.0),
            cand(&[3, 4], 4.0),
            cand(&[5], 1.0),
        ];
        let p = max_weight_set_packing(&cands).unwrap();
        let mut items: Vec<usize> = p
            .chosen
            .iter()
            .flat_map(|&c| cands[c].items.clone())
            .collect();
        let n = items.len();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), n, "chosen candidates must be disjoint");
    }
}
