//! Maximum-weight bipartite assignment (Kuhn-Munkres / Hungarian).
//!
//! Valentine's headline metric works on *ranked lists*, but classic schema
//! matching evaluation — and COMA's match-selection step — extracts a 1-1
//! assignment from the score matrix. This module provides the exact O(n³)
//! solver for that.

use crate::SolverError;
use valentine_obs::cancel;

/// Solves maximum-weight bipartite assignment on an `n × m` score matrix.
///
/// Returns, for each row `i`, `Some(j)` with its assigned column (or `None`
/// if `n > m` and the row stayed unmatched). Scores may be any finite `f64`;
/// negative scores are allowed (but an assignment is always produced for
/// `min(n, m)` rows — callers threshold afterwards if they want partial
/// matchings). Checks the thread's cancellation token once per augmented
/// row (the O(nm) unit of work) and returns [`SolverError::Cancelled`]
/// when a deadline fires mid-solve.
///
/// ```
/// use valentine_solver::hungarian_max;
/// // greedy would take (0,0)=0.9 and strand row 1; the optimum crosses
/// let scores = vec![vec![0.9, 0.8], vec![0.8, 0.1]];
/// assert_eq!(hungarian_max(&scores).unwrap(), vec![Some(1), Some(0)]);
/// ```
pub fn hungarian_max(scores: &[Vec<f64>]) -> Result<Vec<Option<usize>>, SolverError> {
    let n = scores.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let m = scores[0].len();
    for row in scores {
        assert_eq!(row.len(), m, "score matrix must be rectangular");
    }
    if m == 0 {
        return Ok(vec![None; n]);
    }

    // Classic O(n²m) shortest-augmenting-path formulation on the *cost*
    // matrix (negated scores), padded implicitly to square via sentinels.
    // 1-indexed arrays as in the standard e-maxx formulation.
    let inf = f64::INFINITY;
    let big = n.max(m); // pad rows if n > m
    let rows = n;
    let cols = big.max(m);

    let cost = |i: usize, j: usize| -> f64 {
        if i < rows && j < m {
            -scores[i][j]
        } else {
            0.0 // padding
        }
    };

    let mut u = vec![0.0f64; rows + 1];
    let mut v = vec![0.0f64; cols + 1];
    let mut p = vec![0usize; cols + 1]; // p[j] = row matched to column j (1-indexed)
    let mut way = vec![0usize; cols + 1];

    for i in 1..=rows {
        cancel::checkpoint()?;
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![None; rows];
    for j in 1..=cols {
        let i = p[j];
        if i >= 1 && i <= rows && j <= m {
            result[i - 1] = Some(j - 1);
        }
    }
    Ok(result)
}

/// Total score of an assignment produced by [`hungarian_max`].
pub fn assignment_score(scores: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| scores[i][j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matrix_assigns_diagonal() {
        let scores = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let a = hungarian_max(&scores).unwrap();
        assert_eq!(a, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(assignment_score(&scores, &a), 3.0);
    }

    #[test]
    fn picks_global_optimum_over_greedy() {
        // Greedy would take (0,0)=0.9 then (1,1)=0.1 → 1.0;
        // optimal is (0,1)=0.8 + (1,0)=0.8 → 1.6.
        let scores = vec![vec![0.9, 0.8], vec![0.8, 0.1]];
        let a = hungarian_max(&scores).unwrap();
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_wide() {
        let scores = vec![vec![0.1, 0.9, 0.5]];
        let a = hungarian_max(&scores).unwrap();
        assert_eq!(a, vec![Some(1)]);
    }

    #[test]
    fn rectangular_tall_leaves_rows_unmatched() {
        let scores = vec![vec![0.9], vec![0.8], vec![0.7]];
        let a = hungarian_max(&scores).unwrap();
        let matched: Vec<usize> = a.iter().filter_map(|x| *x).collect();
        assert_eq!(matched, vec![0]);
        assert_eq!(a.iter().filter(|x| x.is_none()).count(), 2);
        // The highest-scoring row gets the single column.
        assert_eq!(a[0], Some(0));
    }

    #[test]
    fn handles_negative_scores() {
        let scores = vec![vec![-1.0, -5.0], vec![-5.0, -1.0]];
        let a = hungarian_max(&scores).unwrap();
        assert_eq!(a, vec![Some(0), Some(1)]);
        assert_eq!(assignment_score(&scores, &a), -2.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(hungarian_max(&[]).unwrap().is_empty());
        let a = hungarian_max(&[vec![], vec![]]).unwrap();
        assert_eq!(a, vec![None, None]);
    }

    #[test]
    fn spent_deadline_cancels_mid_solve() {
        use std::time::Duration;
        use valentine_obs::cancel::{scope, CancelToken};
        let scores = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let _s = scope(CancelToken::with_deadline("task", Some(Duration::ZERO)));
        assert!(matches!(
            hungarian_max(&scores),
            Err(SolverError::Cancelled(_))
        ));
    }

    #[test]
    fn assignment_is_a_matching() {
        // random-ish fixed matrix; verify no column is used twice
        let scores = vec![
            vec![0.3, 0.6, 0.1, 0.9],
            vec![0.8, 0.2, 0.4, 0.7],
            vec![0.5, 0.5, 0.9, 0.2],
            vec![0.1, 0.8, 0.3, 0.4],
        ];
        let a = hungarian_max(&scores).unwrap();
        let mut used: Vec<usize> = a.iter().filter_map(|x| *x).collect();
        let len = used.len();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), len, "columns must be distinct");
        assert_eq!(len, 4);
        // brute-force optimum for 4x4
        let mut best = f64::MIN;
        let perms = [
            [0, 1, 2, 3],
            [0, 1, 3, 2],
            [0, 2, 1, 3],
            [0, 2, 3, 1],
            [0, 3, 1, 2],
            [0, 3, 2, 1],
            [1, 0, 2, 3],
            [1, 0, 3, 2],
            [1, 2, 0, 3],
            [1, 2, 3, 0],
            [1, 3, 0, 2],
            [1, 3, 2, 0],
            [2, 0, 1, 3],
            [2, 0, 3, 1],
            [2, 1, 0, 3],
            [2, 1, 3, 0],
            [2, 3, 0, 1],
            [2, 3, 1, 0],
            [3, 0, 1, 2],
            [3, 0, 2, 1],
            [3, 1, 0, 2],
            [3, 1, 2, 0],
            [3, 2, 0, 1],
            [3, 2, 1, 0],
        ];
        for perm in perms {
            let s: f64 = perm.iter().enumerate().map(|(i, &j)| scores[i][j]).sum();
            best = best.max(s);
        }
        assert!((assignment_score(&scores, &a) - best).abs() < 1e-9);
    }
}
