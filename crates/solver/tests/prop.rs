//! Property-based tests for the solver kernels.

use proptest::prelude::*;
use valentine_solver::ilp::Candidate;
use valentine_solver::{
    emd_1d_quantiles, emd_transportation, hungarian_max, max_weight_set_packing, MinHasher,
};

proptest! {
    #[test]
    fn emd_1d_is_a_metric(
        a in proptest::collection::vec(-1e6f64..1e6, 8),
        b in proptest::collection::vec(-1e6f64..1e6, 8),
        c in proptest::collection::vec(-1e6f64..1e6, 8),
    ) {
        let ab = emd_1d_quantiles(&a, &b);
        let ba = emd_1d_quantiles(&b, &a);
        let ac = emd_1d_quantiles(&a, &c);
        let cb = emd_1d_quantiles(&c, &b);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(ab >= 0.0, "non-negativity");
        prop_assert!(ab <= ac + cb + 1e-9, "triangle inequality");
        prop_assert!(emd_1d_quantiles(&a, &a) == 0.0, "identity");
    }

    #[test]
    fn transportation_emd_lower_bounded_by_mean_shift(
        a in proptest::collection::vec(0.01f64..1.0, 4),
        b in proptest::collection::vec(0.01f64..1.0, 4),
    ) {
        // Points on a line at positions 0..4; EMD must be ≥ |mean_a - mean_b|.
        let pos = [0.0, 1.0, 2.0, 3.0];
        let dist: Vec<Vec<f64>> = pos
            .iter()
            .map(|&x| pos.iter().map(|&y| f64::abs(x - y)).collect())
            .collect();
        let d = emd_transportation(&a, &b, &dist).unwrap();
        let ma: f64 = pos.iter().zip(&a).map(|(p, w)| p * w).sum::<f64>() / a.iter().sum::<f64>();
        let mb: f64 = pos.iter().zip(&b).map(|(p, w)| p * w).sum::<f64>() / b.iter().sum::<f64>();
        prop_assert!(d + 1e-6 >= (ma - mb).abs(), "EMD {d} < mean shift {}", (ma - mb).abs());
        prop_assert!(d <= 3.0 + 1e-9, "bounded by diameter");
    }

    #[test]
    fn hungarian_beats_or_ties_greedy(
        flat in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let scores: Vec<Vec<f64>> = flat.chunks(4).map(<[f64]>::to_vec).collect();
        let a = hungarian_max(&scores).unwrap();
        let opt: f64 = a
            .iter()
            .enumerate()
            .filter_map(|(i, j)| j.map(|j| scores[i][j]))
            .sum();
        // greedy baseline
        let mut taken = [false; 4];
        let mut greedy = 0.0;
        for row in &scores {
            let mut best = None;
            for (j, &s) in row.iter().enumerate() {
                if !taken[j] && best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((j, s));
                }
            }
            if let Some((j, s)) = best {
                taken[j] = true;
                greedy += s;
            }
        }
        prop_assert!(opt + 1e-9 >= greedy, "hungarian {opt} < greedy {greedy}");
        // must be a perfect matching on a square matrix
        let mut cols: Vec<usize> = a.iter().filter_map(|x| *x).collect();
        cols.sort_unstable();
        cols.dedup();
        prop_assert_eq!(cols.len(), 4);
    }

    #[test]
    fn set_packing_solution_is_feasible_and_beats_singletons(
        weights in proptest::collection::vec(0.1f64..5.0, 1..12),
        seed in any::<u64>(),
    ) {
        // construct overlapping candidates deterministically from the seed
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cands: Vec<Candidate> = weights
            .iter()
            .map(|&w| {
                let start = (next() % 8) as usize;
                let len = 1 + (next() % 3) as usize;
                Candidate { items: (start..start + len).collect(), weight: w }
            })
            .collect();
        let p = max_weight_set_packing(&cands).unwrap();
        // feasibility: chosen candidates are pairwise disjoint
        let mut items: Vec<usize> = p
            .chosen
            .iter()
            .flat_map(|&c| cands[c].items.clone())
            .collect();
        let n = items.len();
        items.sort_unstable();
        items.dedup();
        prop_assert_eq!(items.len(), n);
        // optimality lower bound: at least the single best candidate
        let best_single = weights.iter().cloned().fold(0.0, f64::max);
        prop_assert!(p.weight + 1e-9 >= best_single);
    }

    #[test]
    fn minhash_estimate_close_to_true_jaccard(
        overlap in 0usize..60,
        extra_a in 1usize..40,
        extra_b in 1usize..40,
    ) {
        let mh = MinHasher::new(512, 1234);
        let a = mh.signature(
            (0..overlap)
                .map(|i| format!("common{i}"))
                .chain((0..extra_a).map(|i| format!("a{i}"))),
        );
        let b = mh.signature(
            (0..overlap)
                .map(|i| format!("common{i}"))
                .chain((0..extra_b).map(|i| format!("b{i}"))),
        );
        let truth = overlap as f64 / (overlap + extra_a + extra_b) as f64;
        let est = mh.jaccard(&a, &b);
        prop_assert!((est - truth).abs() < 0.12, "est {est} vs truth {truth}");
    }
}

// ── Optimized-kernel ↔ scalar-reference equivalence ─────────────────────
//
// The chunked EMD and MinHash kernels must agree with their retained
// scalar references: exactly for the integer MinHash kernels (`min` is
// order-insensitive), within f64-reassociation distance (≤1e-9 relative)
// for the float EMD sums. Lengths deliberately straddle the 8-wide chunk
// boundary, and constant vectors exercise the all-equal degenerate case.

use valentine_solver::{emd_1d_normalized, emd_1d_normalized_scalar, emd_1d_quantiles_scalar};

proptest! {
    #[test]
    fn emd_kernels_match_scalar_reference(
        mut a in proptest::collection::vec(-1e6f64..1e6, 0..33),
        mut b in proptest::collection::vec(-1e6f64..1e6, 0..33),
    ) {
        // trim to a common length: the kernels require equal-length input
        let n = a.len().min(b.len());
        a.truncate(n);
        b.truncate(n);
        let (fast, slow) = (emd_1d_quantiles(&a, &b), emd_1d_quantiles_scalar(&a, &b));
        prop_assert!((fast - slow).abs() <= 1e-9 * slow.abs().max(1.0), "{fast} vs {slow}");
        let (fast, slow) = (emd_1d_normalized(&a, &b), emd_1d_normalized_scalar(&a, &b));
        prop_assert!((fast - slow).abs() <= 1e-9 * slow.abs().max(1.0), "{fast} vs {slow}");
    }

    #[test]
    fn emd_kernels_match_scalar_on_constant_sketches(v in -1e6f64..1e6, n in 0usize..40) {
        let a = vec![v; n];
        prop_assert_eq!(emd_1d_quantiles(&a, &a), emd_1d_quantiles_scalar(&a, &a));
        prop_assert_eq!(emd_1d_normalized(&a, &a), emd_1d_normalized_scalar(&a, &a));
    }

    #[test]
    fn minhash_kernels_match_scalar_reference(
        items in proptest::collection::vec("[a-zA-Z0-9]{0,12}", 0..40),
        other in proptest::collection::vec("[a-zA-Z0-9]{0,12}", 0..40),
        k in 1usize..130,
    ) {
        let mh = MinHasher::new(k, 0xA5);
        let sig = mh.signature(&items);
        prop_assert_eq!(&sig, &mh.signature_scalar(&items));
        let sig_other = mh.signature(&other);
        prop_assert_eq!(
            mh.jaccard(&sig, &sig_other),
            mh.jaccard_scalar(&sig, &sig_other)
        );
        // batched path agrees with one-at-a-time
        let batched = mh.signature_many([items.iter(), other.iter()]);
        prop_assert_eq!(&batched[0], &sig);
        prop_assert_eq!(&batched[1], &sig_other);
    }
}
