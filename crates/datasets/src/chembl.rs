//! ChEMBL `Assays`-style table generator.
//!
//! ChEMBL is "one of the few datasets that come with an ontology" (EFO) —
//! the property that makes SemProp testable. Fabricated variants in the
//! paper span 12–23 columns and 7 500–15 000 rows. This generator emits a
//! 23-column assay table whose categorical vocabulary is drawn from the
//! bundled EFO-like ontology ([`valentine_ontology::efo_like`]), so the
//! semantic matcher has real targets to link against — while id-like and
//! code-like columns carry domain jargon that no pre-trained embedding
//! space can place, reproducing the paper's SemProp findings.

use rand::Rng;
use valentine_table::{Column, Table, Value};

use crate::gen::{self, column_rng};
use crate::names;
use crate::SizeClass;

/// Paper-scale row count.
pub const PAPER_ROWS: usize = 15_000;

const ASSAY_TYPES: &[&str] = &[
    "binding",
    "functional",
    "adme",
    "toxicity",
    "physicochemical",
];
const TEST_TYPES: &[&str] = &["in vitro", "in vivo", "ex vivo"];
const ORGANISMS: &[&str] = &[
    "homo sapiens",
    "rattus norvegicus",
    "mus musculus",
    "canis familiaris",
];
const TISSUES: &[&str] = &["liver", "brain", "kidney", "heart", "lung"];
const CELL_TYPES: &[&str] = &["hepatocyte", "neuron", "hela", "cho"];
const BAO_FORMATS: &[&str] = &[
    "cell-based format",
    "organism-based format",
    "biochemical format",
    "tissue-based format",
];
const MEASUREMENTS: &[&str] = &["ic50", "ec50", "ki", "potency"];
const STRAINS: &[&str] = &["wistar", "sprague-dawley", "c57bl/6", "balb/c"];

/// Generates the Assays-style table: 23 columns mixing ontology-aligned
/// categories with opaque identifiers.
pub fn assays(size: SizeClass, seed: u64) -> Table {
    let rows = size.scale_rows(PAPER_ROWS);
    let mut columns: Vec<Column> = Vec::with_capacity(23);

    let mut push = |name: &str, f: &mut dyn FnMut(&mut rand::rngs::StdRng, usize) -> Value| {
        let mut rng = column_rng(seed, name);
        let values: Vec<Value> = (0..rows).map(|i| f(&mut rng, i)).collect();
        columns.push(Column::new(name, values));
    };

    push("assay_id", &mut |_, i| Value::Int(300_000 + i as i64));
    push("chembl_id", &mut |_, i| {
        Value::Str(format!("chembl{}", 800_000 + i))
    });
    push("description", &mut |r, _| {
        Value::Str(format!(
            "{} of {} in {}",
            gen::pick(r, MEASUREMENTS),
            gen::sentence(r, 3),
            gen::pick(r, ORGANISMS)
        ))
    });
    push("assay_type", &mut |r, _| {
        Value::str(gen::pick(r, ASSAY_TYPES))
    });
    push("assay_test_type", &mut |r, _| {
        Value::str(gen::pick(r, TEST_TYPES))
    });
    push("assay_category", &mut |r, _| {
        Value::str(if r.gen_bool(0.7) {
            "screening"
        } else {
            "confirmatory"
        })
    });
    push("assay_organism", &mut |r, _| {
        Value::str(gen::pick(r, ORGANISMS))
    });
    push("assay_tax_id", &mut |r, _| {
        Value::Int(r.gen_range(7_000..11_000))
    });
    push("assay_strain", &mut |r, _| {
        gen::maybe_null(r, 0.5, |r| Value::str(gen::pick(r, STRAINS)))
    });
    push("assay_tissue", &mut |r, _| {
        gen::maybe_null(r, 0.3, |r| Value::str(gen::pick(r, TISSUES)))
    });
    push("assay_cell_type", &mut |r, _| {
        gen::maybe_null(r, 0.4, |r| Value::str(gen::pick(r, CELL_TYPES)))
    });
    push("assay_subcellular_fraction", &mut |r, _| {
        gen::maybe_null(r, 0.8, |r| {
            Value::str(if r.gen_bool(0.5) {
                "membrane"
            } else {
                "cytosol"
            })
        })
    });
    push("target_id", &mut |r, _| Value::Int(r.gen_range(1..12_000)));
    push("target_type", &mut |r, _| {
        Value::str(if r.gen_bool(0.8) {
            "single protein"
        } else {
            "protein complex"
        })
    });
    push("relationship_type", &mut |r, _| {
        Value::str(
            *["d", "h", "m", "u"]
                .get(r.gen_range(0..4))
                .expect("in range"),
        )
    });
    push("confidence_score", &mut |r, _| {
        Value::Int(r.gen_range(0..10))
    });
    push("curated_by", &mut |r, _| {
        Value::str(gen::pick(r, names::CURATORS))
    });
    push("src_id", &mut |r, _| Value::Int(r.gen_range(1..50)));
    push("src_assay_id", &mut |r, _| Value::Str(gen::hex_hash(r, 10)));
    push("doc_id", &mut |r, _| Value::Int(r.gen_range(1..80_000)));
    push("bao_format", &mut |r, _| {
        Value::str(gen::pick(r, BAO_FORMATS))
    });
    push("bao_code", &mut |r, _| {
        Value::Str(format!("bao_{:07}", r.gen_range(0..3_000_000)))
    });
    push("measurement_type", &mut |r, _| {
        Value::str(gen::pick(r, MEASUREMENTS))
    });

    Table::new("assays", columns).expect("static schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use valentine_ontology::efo_like;

    #[test]
    fn schema_shape() {
        let t = assays(SizeClass::Tiny, 0);
        assert_eq!(t.width(), 23);
        assert!(t.height() >= 40);
    }

    #[test]
    fn vocabulary_is_ontology_aligned() {
        let o = efo_like();
        // every categorical pool value must resolve to an ontology class
        for pool in [
            ASSAY_TYPES,
            ORGANISMS,
            TISSUES,
            CELL_TYPES,
            BAO_FORMATS,
            MEASUREMENTS,
        ] {
            for v in pool {
                assert!(
                    o.class_of(v).is_some(),
                    "`{v}` must be linkable to the EFO-like ontology"
                );
            }
        }
    }

    #[test]
    fn id_columns_are_jargon() {
        let t = assays(SizeClass::Tiny, 0);
        let o = efo_like();
        // code columns carry values the ontology cannot link (domain gap)
        for v in t.column("bao_code").unwrap().values().iter().take(5) {
            assert!(o.class_of(&v.render()).is_none());
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(assays(SizeClass::Tiny, 1), assays(SizeClass::Tiny, 1));
        assert_ne!(assays(SizeClass::Tiny, 1), assays(SizeClass::Tiny, 2));
    }

    #[test]
    fn confidence_scores_in_range() {
        let t = assays(SizeClass::Tiny, 2);
        let s = t.column("confidence_score").unwrap().stats();
        assert!(s.min.unwrap() >= 0.0 && s.max.unwrap() <= 9.0);
    }
}
