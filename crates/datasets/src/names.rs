//! Static value pools shared by the dataset generators.
//!
//! Combinatorial use of these pools (first × last names, street × city, …)
//! produces the cardinalities the matchers need without bundling real data.

/// Common given names.
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "william",
    "elizabeth",
    "david",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "christopher",
    "nancy",
    "daniel",
    "lisa",
    "matthew",
    "margaret",
    "anthony",
    "betty",
    "mark",
    "sandra",
    "donald",
    "ashley",
    "steven",
    "kimberly",
    "paul",
    "emily",
    "andrew",
    "donna",
    "joshua",
    "michelle",
];

/// Common family names.
pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
];

/// Cities.
pub const CITIES: &[&str] = &[
    "amsterdam",
    "rotterdam",
    "delft",
    "utrecht",
    "eindhoven",
    "athens",
    "thessaloniki",
    "lyon",
    "paris",
    "marseille",
    "berlin",
    "munich",
    "hamburg",
    "madrid",
    "barcelona",
    "rome",
    "milan",
    "vienna",
    "zurich",
    "geneva",
    "london",
    "manchester",
    "dublin",
    "brussels",
    "antwerp",
    "copenhagen",
    "stockholm",
    "oslo",
    "helsinki",
    "lisbon",
];

/// Countries.
pub const COUNTRIES: &[&str] = &[
    "netherlands",
    "greece",
    "france",
    "germany",
    "spain",
    "italy",
    "austria",
    "switzerland",
    "united kingdom",
    "ireland",
    "belgium",
    "denmark",
    "sweden",
    "norway",
    "finland",
    "portugal",
    "poland",
    "czechia",
    "hungary",
    "romania",
];

/// US states (for the TPC-DI-style table).
pub const STATES: &[&str] = &[
    "alabama",
    "alaska",
    "arizona",
    "california",
    "colorado",
    "florida",
    "georgia",
    "illinois",
    "indiana",
    "iowa",
    "kansas",
    "kentucky",
    "maryland",
    "michigan",
    "minnesota",
    "missouri",
    "nevada",
    "new york",
    "ohio",
    "oregon",
    "pennsylvania",
    "texas",
    "utah",
    "virginia",
    "washington",
    "wisconsin",
];

/// Street names.
pub const STREETS: &[&str] = &[
    "main street",
    "oak avenue",
    "maple drive",
    "cedar lane",
    "park road",
    "elm street",
    "washington avenue",
    "lake view",
    "hillcrest road",
    "river street",
    "church street",
    "highland avenue",
    "sunset boulevard",
    "broadway",
    "second street",
    "third avenue",
    "mill road",
    "forest lane",
    "spring street",
    "garden road",
];

/// Employers / companies.
pub const COMPANIES: &[&str] = &[
    "acme corp",
    "globex",
    "initech",
    "umbrella group",
    "stark industries",
    "wayne enterprises",
    "wonka industries",
    "tyrell corp",
    "cyberdyne systems",
    "hooli",
    "pied piper",
    "vandelay",
    "dunder mifflin",
    "prestige worldwide",
    "oscorp",
    "massive dynamic",
    "aperture science",
    "blue sun",
    "virtucon",
    "soylent corp",
];

/// Marital statuses.
pub const MARITAL_STATUSES: &[&str] = &["single", "married", "divorced", "widowed", "separated"];

/// Credit ratings.
pub const CREDIT_RATINGS: &[&str] = &["aaa", "aa", "a", "bbb", "bb", "b", "ccc"];

/// Music genres.
pub const GENRES: &[&str] = &[
    "rock",
    "pop",
    "jazz",
    "blues",
    "country",
    "soul",
    "funk",
    "gospel",
    "rockabilly",
    "folk",
    "rhythm and blues",
    "disco",
    "hip hop",
];

/// Record labels.
pub const RECORD_LABELS: &[&str] = &[
    "sun records",
    "rca victor",
    "columbia",
    "motown",
    "atlantic",
    "capitol",
    "decca",
    "chess records",
    "stax",
    "island",
    "emi",
    "parlophone",
];

/// Musical instruments.
pub const INSTRUMENTS: &[&str] = &[
    "guitar",
    "piano",
    "drums",
    "bass",
    "saxophone",
    "trumpet",
    "violin",
    "harmonica",
];

/// Vocal ranges.
pub const VOCAL_RANGES: &[&str] = &[
    "soprano",
    "mezzo-soprano",
    "alto",
    "tenor",
    "baritone",
    "bass",
];

/// Awards.
pub const AWARDS: &[&str] = &[
    "grammy award",
    "american music award",
    "billboard music award",
    "mtv video music award",
    "brit award",
    "golden globe",
    "peoples choice award",
];

/// Restaurant cuisine types (Magellan).
pub const CUISINES: &[&str] = &[
    "italian",
    "french",
    "japanese",
    "chinese",
    "mexican",
    "indian",
    "thai",
    "greek",
    "american",
    "spanish",
    "korean",
    "vietnamese",
];

/// Movie genres (Magellan).
pub const MOVIE_GENRES: &[&str] = &[
    "action",
    "comedy",
    "drama",
    "thriller",
    "horror",
    "romance",
    "sci-fi",
    "documentary",
    "animation",
    "western",
];

/// Beer styles (Magellan).
pub const BEER_STYLES: &[&str] = &[
    "ipa",
    "stout",
    "porter",
    "lager",
    "pilsner",
    "wheat ale",
    "pale ale",
    "saison",
    "tripel",
    "amber ale",
];

/// Book genres (Magellan).
pub const BOOK_GENRES: &[&str] = &[
    "fantasy",
    "mystery",
    "biography",
    "history",
    "science",
    "poetry",
    "romance",
    "thriller",
];

/// Product categories (Magellan).
pub const PRODUCT_CATEGORIES: &[&str] = &[
    "electronics",
    "clothing",
    "kitchen",
    "garden",
    "toys",
    "sports",
    "office",
    "automotive",
];

/// SCRUM task states (ING#1).
pub const TASK_STATUSES: &[&str] = &[
    "todo",
    "in progress",
    "review",
    "blocked",
    "done",
    "cancelled",
];

/// Task priorities (ING#1).
pub const PRIORITIES: &[&str] = &["critical", "high", "medium", "low", "trivial"];

/// Team names (ING).
pub const TEAM_NAMES: &[&str] = &[
    "payments",
    "mortgages",
    "savings",
    "cards",
    "lending",
    "onboarding",
    "fraud",
    "channels",
    "data platform",
    "identity",
    "investments",
    "treasury",
];

/// Software application names (ING#2).
pub const APP_NAMES: &[&str] = &[
    "atlas",
    "beacon",
    "catalyst",
    "dynamo",
    "echo",
    "forge",
    "granite",
    "horizon",
    "ignite",
    "jupiter",
    "krypton",
    "lighthouse",
    "meridian",
    "nebula",
    "orbit",
    "pulsar",
    "quasar",
    "raptor",
    "sentinel",
    "titan",
    "umbra",
    "vector",
    "wavelength",
    "xenon",
    "yonder",
    "zephyr",
];

/// Departments (ING#2).
pub const DEPARTMENTS: &[&str] = &[
    "retail banking",
    "wholesale banking",
    "risk",
    "compliance",
    "operations",
    "technology",
    "finance",
    "human resources",
];

/// Operating systems / hardware platforms (ING#2).
pub const PLATFORMS: &[&str] = &[
    "rhel 7",
    "rhel 8",
    "windows server 2016",
    "windows server 2019",
    "ubuntu 20.04",
    "aix",
    "solaris",
    "z/os",
    "kubernetes",
    "openshift",
];

/// Support levels (ING#2).
pub const SUPPORT_LEVELS: &[&str] = &["gold", "silver", "bronze", "best effort"];

/// ChEMBL-style curator names.
pub const CURATORS: &[&str] = &["autocuration", "expert", "intermediate", "community"];

/// English filler words for descriptions.
pub const FILLER_WORDS: &[&str] = &[
    "inhibition",
    "binding",
    "affinity",
    "compound",
    "against",
    "activity",
    "measured",
    "evaluated",
    "displacement",
    "concentration",
    "effect",
    "response",
    "determined",
    "cells",
    "protein",
    "receptor",
    "enzyme",
    "human",
    "assay",
    "study",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [
            FIRST_NAMES,
            LAST_NAMES,
            CITIES,
            COUNTRIES,
            STATES,
            STREETS,
            COMPANIES,
            MARITAL_STATUSES,
            CREDIT_RATINGS,
            GENRES,
            RECORD_LABELS,
            INSTRUMENTS,
            VOCAL_RANGES,
            AWARDS,
            CUISINES,
            MOVIE_GENRES,
            BEER_STYLES,
            BOOK_GENRES,
            PRODUCT_CATEGORIES,
            TASK_STATUSES,
            PRIORITIES,
            TEAM_NAMES,
            APP_NAMES,
            DEPARTMENTS,
            PLATFORMS,
            SUPPORT_LEVELS,
            CURATORS,
            FILLER_WORDS,
        ] {
            assert!(!pool.is_empty());
            for s in pool {
                assert_eq!(*s, s.to_lowercase(), "pools are canonical lowercase");
            }
        }
    }

    #[test]
    fn pools_have_no_duplicates() {
        for pool in [FIRST_NAMES, LAST_NAMES, CITIES, COUNTRIES, APP_NAMES] {
            let mut v: Vec<&str> = pool.to_vec();
            v.sort_unstable();
            let before = v.len();
            v.dedup();
            assert_eq!(v.len(), before);
        }
    }
}
