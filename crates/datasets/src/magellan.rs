//! Magellan-repository-style curated pairs.
//!
//! The paper picks 7 Magellan dataset pairs previously used for schema
//! matching in the EmbDI paper. All of them are **unionable** pairs with
//! identical attribute names between corresponding columns, overlapping
//! value sets with minor discrepancies, and occasionally *multi-valued*
//! attributes (lists of actors/authors) — 3–7 columns, 864–131 099 rows.
//!
//! This module generates seven synthetic equivalents: restaurants, movies,
//! songs, books, beers, products, and citations. For each, a master table
//! is split horizontally with ~50 % row overlap and one side's values
//! receive *formatting discrepancies* (not typos): phone formats change,
//! multi-valued lists are re-ordered/truncated, casing and punctuation
//! drift. Schema-based matchers therefore score perfectly while
//! instance-based matchers lose ground — Table III's pattern.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valentine_fabricator::{DatasetPair, ScenarioKind};
use valentine_table::{Column, Table, Value};

use crate::gen::{self, column_rng};
use crate::names;
use crate::SizeClass;

/// Paper-range base row count (smallest Magellan pair ~864 rows; we anchor
/// near the low end since the pair spectrum is wide).
pub const PAPER_ROWS: usize = 4_000;

/// The seven pair identifiers, in deterministic order.
pub const PAIR_NAMES: [&str; 7] = [
    "restaurants",
    "movies",
    "songs",
    "books",
    "beers",
    "products",
    "citations",
];

/// Generates all seven pairs.
pub fn pairs(size: SizeClass, seed: u64) -> Vec<DatasetPair> {
    PAIR_NAMES
        .iter()
        .map(|name| make_pair(name, size, seed))
        .collect()
}

fn make_pair(name: &str, size: SizeClass, seed: u64) -> DatasetPair {
    let master = master_table(name, size, seed);
    let h = master.height() / 2;
    let rows: Vec<usize> = (0..master.height()).collect();
    // ~50% row overlap between the two sides
    let a = master.take_rows(&rows[0..h]);
    let mut b = master.take_rows(&rows[h / 2..h / 2 + h]);
    b = apply_discrepancies(&b, seed ^ 0xd15c);
    let ground_truth = master
        .column_names()
        .into_iter()
        .map(|n| (n.to_string(), n.to_string()))
        .collect();
    let pair = DatasetPair {
        id: format!("magellan/{name}"),
        source_name: "magellan".into(),
        scenario: ScenarioKind::Unionable,
        noisy_schema: false,
        noisy_instances: true,
        source: a,
        target: b,
        ground_truth,
    };
    debug_assert!(pair.validate().is_ok());
    pair
}

/// A multi-valued cell: `k` pool entries joined by `", "`.
fn multi_valued<R: Rng>(rng: &mut R, pool: &[&str], k: usize) -> Value {
    let items: Vec<&str> = (0..k).map(|_| gen::pick(rng, pool)).collect();
    Value::Str(items.join(", "))
}

fn master_table(name: &str, size: SizeClass, seed: u64) -> Table {
    let rows = size.scale_rows(PAPER_ROWS);
    let seed = seed ^ valentine_table::fxhash::hash_str(name);
    let mut columns: Vec<Column> = Vec::new();

    let mut push = |col: &str, f: &mut dyn FnMut(&mut StdRng, usize) -> Value| {
        let mut rng = column_rng(seed, col);
        let values: Vec<Value> = (0..rows).map(|i| f(&mut rng, i)).collect();
        columns.push(Column::new(col, values));
    };

    match name {
        "restaurants" => {
            push("name", &mut |r, i| {
                Value::Str(format!(
                    "{} {}",
                    gen::pick(r, names::LAST_NAMES),
                    ["kitchen", "bistro", "grill", "diner"][i % 4]
                ))
            });
            push("addr", &mut |r, _| {
                Value::Str(format!(
                    "{} {}",
                    r.gen_range(1..999),
                    gen::pick(r, names::STREETS)
                ))
            });
            push("city", &mut |r, _| Value::str(gen::pick(r, names::CITIES)));
            push("phone", &mut |r, _| gen::phone(r));
            push("type", &mut |r, _| {
                Value::str(gen::pick(r, names::CUISINES))
            });
        }
        "movies" => {
            push("title", &mut |r, _| Value::Str(gen::sentence(r, 3)));
            push("year", &mut |r, _| Value::Int(r.gen_range(1960..2021)));
            push("director", &mut |r, _| {
                Value::Str(format!(
                    "{} {}",
                    gen::pick(r, names::FIRST_NAMES),
                    gen::pick(r, names::LAST_NAMES)
                ))
            });
            // multi-valued attribute, as the paper calls out
            push("actors", &mut |r, _| {
                let k = r.gen_range(2..5);
                let list: Vec<String> = (0..k)
                    .map(|_| {
                        format!(
                            "{} {}",
                            gen::pick(r, names::FIRST_NAMES),
                            gen::pick(r, names::LAST_NAMES)
                        )
                    })
                    .collect();
                Value::Str(list.join(", "))
            });
            push("genre", &mut |r, _| {
                Value::str(gen::pick(r, names::MOVIE_GENRES))
            });
            push("rating", &mut |r, _| {
                Value::float((r.gen_range(1.0..10.0f64) * 10.0).round() / 10.0)
            });
        }
        "songs" => {
            push("title", &mut |r, _| Value::Str(gen::sentence(r, 2)));
            push("artist", &mut |r, _| {
                Value::Str(format!(
                    "{} {}",
                    gen::pick(r, names::FIRST_NAMES),
                    gen::pick(r, names::LAST_NAMES)
                ))
            });
            push("album", &mut |r, _| Value::Str(gen::sentence(r, 2)));
            push("year", &mut |r, _| Value::Int(r.gen_range(1950..2021)));
            push("duration", &mut |r, _| Value::Int(r.gen_range(90..420)));
            push("genre", &mut |r, _| Value::str(gen::pick(r, names::GENRES)));
        }
        "books" => {
            push("title", &mut |r, _| Value::Str(gen::sentence(r, 4)));
            push("authors", &mut |r, _| {
                let k = r.gen_range(1..4);
                let list: Vec<String> = (0..k)
                    .map(|_| {
                        format!(
                            "{} {}",
                            gen::pick(r, names::FIRST_NAMES),
                            gen::pick(r, names::LAST_NAMES)
                        )
                    })
                    .collect();
                Value::Str(list.join(", "))
            });
            push("year", &mut |r, _| Value::Int(r.gen_range(1900..2021)));
            push("publisher", &mut |r, _| {
                Value::str(gen::pick(r, names::COMPANIES))
            });
            push("pages", &mut |r, _| Value::Int(r.gen_range(80..1200)));
            push("genre", &mut |r, _| {
                Value::str(gen::pick(r, names::BOOK_GENRES))
            });
            push("isbn", &mut |r, _| {
                Value::Str(format!("978-{:010}", r.gen_range(0u64..10_000_000_000)))
            });
        }
        "beers" => {
            push("name", &mut |r, _| {
                Value::Str(format!(
                    "{} {}",
                    gen::pick(r, names::CITIES),
                    gen::pick(r, names::BEER_STYLES)
                ))
            });
            push("brewery", &mut |r, _| {
                Value::str(gen::pick(r, names::COMPANIES))
            });
            push("style", &mut |r, _| {
                Value::str(gen::pick(r, names::BEER_STYLES))
            });
            push("abv", &mut |r, _| {
                Value::float((r.gen_range(3.0..12.0f64) * 10.0).round() / 10.0)
            });
        }
        "products" => {
            push("name", &mut |r, _| Value::Str(gen::sentence(r, 3)));
            push("brand", &mut |r, _| {
                Value::str(gen::pick(r, names::COMPANIES))
            });
            push("category", &mut |r, _| {
                Value::str(gen::pick(r, names::PRODUCT_CATEGORIES))
            });
            push("price", &mut |r, _| gen::amount(r, 3.5, 1.0));
            push("weight", &mut |r, _| {
                Value::float((r.gen_range(0.1..30.0f64) * 100.0).round() / 100.0)
            });
        }
        "citations" => {
            push("title", &mut |r, _| Value::Str(gen::sentence(r, 6)));
            push("authors", &mut |r, _| {
                let k = r.gen_range(1..5);
                multi_valued(r, names::LAST_NAMES, k)
            });
            push("venue", &mut |r, _| {
                Value::str(
                    *["sigmod", "vldb", "icde", "kdd", "www", "cikm"]
                        .get(r.gen_range(0..6))
                        .expect("in range"),
                )
            });
            push("year", &mut |r, _| Value::Int(r.gen_range(1990..2021)));
        }
        other => panic!("unknown magellan pair `{other}`"),
    }

    Table::new(name.to_string(), columns).expect("static schema is valid")
}

/// Formatting discrepancies between the two sides of a pair (not typos):
/// multi-valued lists are re-ordered and sometimes truncated, phone-like
/// strings are reformatted, and other strings occasionally gain a suffix.
fn apply_discrepancies(table: &Table, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let columns: Vec<Column> = table
        .columns()
        .iter()
        .map(|col| {
            col.map_values(|v| match v {
                Value::Str(s) if s.contains(", ") => {
                    // multi-valued: rotate the list, occasionally drop one
                    let mut items: Vec<&str> = s.split(", ").collect();
                    let shift = 1.min(items.len().saturating_sub(1));
                    items.rotate_left(shift);
                    if items.len() > 2 && rng.gen_bool(0.3) {
                        items.pop();
                    }
                    Value::Str(items.join(", "))
                }
                Value::Str(s) if s.starts_with('+') => {
                    // phone: strip separators
                    Value::Str(s.chars().filter(|c| c.is_ascii_digit()).collect())
                }
                Value::Str(s) if rng.gen_bool(0.08) => Value::Str(format!("{s} inc")),
                other => other.clone(),
            })
        })
        .collect();
    Table::new(table.name().to_string(), columns).expect("shape preserved")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_pairs_generated() {
        let ps = pairs(SizeClass::Tiny, 0);
        assert_eq!(ps.len(), 7);
        for p in &ps {
            assert!(p.validate().is_ok(), "{}", p.id);
            assert_eq!(p.scenario, ScenarioKind::Unionable);
            assert!(
                (3..=7).contains(&p.source.width()),
                "{}: {}",
                p.id,
                p.source.width()
            );
        }
    }

    #[test]
    fn column_names_identical_across_sides() {
        for p in pairs(SizeClass::Tiny, 0) {
            assert_eq!(p.source.column_names(), p.target.column_names());
            for (s, t) in &p.ground_truth {
                assert_eq!(s, t);
            }
        }
    }

    #[test]
    fn value_sets_overlap_but_differ() {
        let ps = pairs(SizeClass::Tiny, 0);
        let restaurants = &ps[0];
        let sa = restaurants
            .source
            .column("city")
            .unwrap()
            .rendered_value_set();
        let sb = restaurants
            .target
            .column("city")
            .unwrap()
            .rendered_value_set();
        assert!(sa.intersection(&sb).count() > 0, "row overlap must show");
        // phone formatting differs between sides
        let pa = restaurants.source.column("phone").unwrap().values()[0].render();
        assert!(pa.contains('-'));
        let any_stripped = restaurants
            .target
            .column("phone")
            .unwrap()
            .values()
            .iter()
            .any(|v| !v.render().contains('-'));
        assert!(any_stripped);
    }

    #[test]
    fn movies_have_multivalued_actors() {
        let ps = pairs(SizeClass::Tiny, 0);
        let movies = &ps[1];
        let sample = movies.source.column("actors").unwrap().values()[0].render();
        assert!(sample.contains(", "), "actors must be a list: {sample}");
    }

    #[test]
    fn deterministic() {
        let a = pairs(SizeClass::Tiny, 3);
        let b = pairs(SizeClass::Tiny, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.target, y.target);
        }
    }

    #[test]
    fn pair_ids_unique() {
        let ids: std::collections::BTreeSet<String> = pairs(SizeClass::Tiny, 0)
            .into_iter()
            .map(|p| p.id)
            .collect();
        assert_eq!(ids.len(), 7);
    }
}
