//! Small helpers shared by the dataset generators.

use rand::rngs::StdRng;
use rand::Rng;
use valentine_table::{Date, Value};

/// Picks a uniform element of a pool.
pub fn pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// A random date between two years (inclusive), as a [`Value::Date`].
pub fn date_between<R: Rng>(rng: &mut R, from_year: i32, to_year: i32) -> Value {
    let d = Date::new(
        rng.gen_range(from_year..=to_year),
        rng.gen_range(1..=12u8),
        rng.gen_range(1..=28u8),
    )
    .expect("generated components are valid");
    Value::Date(d)
}

/// A phone number string like `+31-20-5551234`.
pub fn phone<R: Rng>(rng: &mut R) -> Value {
    Value::Str(format!(
        "+{}-{}-555{:04}",
        rng.gen_range(1..99),
        rng.gen_range(10..99),
        rng.gen_range(0..10_000)
    ))
}

/// A hex hash-like token of `len` nibbles (ING#1 columns are full of these).
pub fn hex_hash<R: Rng>(rng: &mut R, len: usize) -> String {
    (0..len)
        .map(|_| char::from_digit(rng.gen_range(0..16u32), 16).expect("nibble"))
        .collect()
}

/// A log-normal-ish positive amount: `exp(N(mu, sigma))` rounded to cents.
pub fn amount<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> Value {
    let g = gaussian(rng);
    Value::float(((mu + sigma * g).exp() * 100.0).round() / 100.0)
}

/// Standard Gaussian via Box-Muller.
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A short pseudo-English sentence of `words` filler tokens.
pub fn sentence<R: Rng>(rng: &mut R, words: usize) -> String {
    (0..words)
        .map(|_| pick(rng, crate::names::FILLER_WORDS))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Sprinkles `ratio` of nulls into a generated value, used to make realistic
/// sparse columns. The generator closure only runs for non-null cells.
pub fn maybe_null<R: Rng>(rng: &mut R, ratio: f64, f: impl FnOnce(&mut R) -> Value) -> Value {
    if rng.gen_bool(ratio) {
        Value::Null
    } else {
        f(rng)
    }
}

/// Derives a child RNG for a named column so generators can build columns
/// independently of declaration order.
pub fn column_rng(seed: u64, column: &str) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed ^ valentine_table::fxhash::hash_str(column))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn helpers_are_deterministic() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            pick(&mut a, crate::names::CITIES),
            pick(&mut b, crate::names::CITIES)
        );
        assert_eq!(phone(&mut a), phone(&mut b));
        assert_eq!(hex_hash(&mut a, 12), hex_hash(&mut b, 12));
    }

    #[test]
    fn date_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let Value::Date(d) = date_between(&mut rng, 1950, 2000) else {
                panic!()
            };
            assert!((1950..=2000).contains(&d.year));
        }
    }

    #[test]
    fn amounts_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let Value::Float(x) = amount(&mut rng, 10.0, 0.5) else {
                panic!()
            };
            assert!(x > 0.0);
        }
    }

    #[test]
    fn hex_hash_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = hex_hash(&mut rng, 16);
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn maybe_null_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(maybe_null(&mut rng, 0.0, |_r| Value::Int(1)), Value::Int(1));
        assert_eq!(maybe_null(&mut rng, 1.0, |_r| Value::Int(1)), Value::Null);
    }

    #[test]
    fn column_rng_differs_per_column() {
        let mut a = column_rng(7, "alpha");
        let mut b = column_rng(7, "beta");
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }
}
