//! WikiData-style curated singer pairs.
//!
//! The paper queries WikiData for "singers who are USA citizens", builds two
//! tables over the same entities with (a) varied column names
//! (partner → spouse, …) and (b) six columns whose cell values are replaced
//! by alternative encodings of the same fact (Elvis Presley → Elvis Aaron
//! Presley), then manually derives one pair per relatedness scenario
//! (4 pairs, 13–20 columns, 5 423–10 846 rows).
//!
//! This module reproduces that construction synthetically: a 20-column
//! string-heavy singer table, a *recoded* twin with 6 semantic renames and
//! 6 value re-encodings, and the four scenario pairs carved out of them.

use rand::Rng;
use valentine_fabricator::{DatasetPair, ScenarioKind};
use valentine_table::{Column, Table, Value};

use crate::gen::{self, column_rng};
use crate::names;
use crate::SizeClass;

/// Paper-scale row count of the base table (halves land at 5 423).
pub const PAPER_ROWS: usize = 10_846;

/// Columns whose *names* differ between the two tables.
///
/// A third of the renames are thesaurus-bridgeable synonyms
/// (partner → spouse); the rest are "very different" names no thesaurus
/// covers — the mix the paper describes ("attribute names which, in some
/// cases, are very different"), which caps schema-based methods below the
/// instance-based ones on these pairs.
pub const RENAMES: &[(&str, &str)] = &[
    ("partner", "spouse"),
    ("genre", "sound_profile"),
    ("record_label", "imprint"),
    ("citizenship", "nationality"),
    ("birth_date", "date_of_birth"),
    ("residence", "based_in"),
    ("awards", "accolades"),
    ("net_worth", "fortune"),
    ("birth_place", "origin_city"),
];

/// Columns whose *values* are re-encoded in the second table (6 columns).
pub const RECODED: &[&str] = &[
    "artist_name",
    "birth_place",
    "height_cm",
    "awards",
    "net_worth",
    "birth_date",
];

const MIDDLE_NAMES: &[&str] = &["aaron", "lee", "marie", "ray", "ann", "jay", "lou", "mae"];

/// The base singers table: 20 mostly-string columns.
pub fn singers(size: SizeClass, seed: u64) -> Table {
    let rows = size.scale_rows(PAPER_ROWS);
    let mut columns: Vec<Column> = Vec::with_capacity(20);

    let mut push = |name: &str, f: &mut dyn FnMut(&mut rand::rngs::StdRng, usize) -> Value| {
        let mut rng = column_rng(seed, name);
        let values: Vec<Value> = (0..rows).map(|i| f(&mut rng, i)).collect();
        columns.push(Column::new(name, values));
    };

    push("artist_name", &mut |r, i| {
        Value::Str(format!(
            "{} {}{}",
            gen::pick(r, names::FIRST_NAMES),
            gen::pick(r, names::LAST_NAMES),
            if i > 1500 {
                format!(" {}", i)
            } else {
                String::new()
            },
        ))
    });
    push("birth_name", &mut |r, _| {
        Value::Str(format!(
            "{} {}",
            gen::pick(r, names::FIRST_NAMES),
            gen::pick(r, names::LAST_NAMES)
        ))
    });
    push("birth_date", &mut |r, _| gen::date_between(r, 1930, 2000));
    push("birth_place", &mut |r, _| {
        Value::str(gen::pick(r, names::CITIES))
    });
    push("genre", &mut |r, _| Value::str(gen::pick(r, names::GENRES)));
    push("record_label", &mut |r, _| {
        Value::str(gen::pick(r, names::RECORD_LABELS))
    });
    push("partner", &mut |r, _| {
        gen::maybe_null(r, 0.3, |r| {
            Value::Str(format!(
                "{} {}",
                gen::pick(r, names::FIRST_NAMES),
                gen::pick(r, names::LAST_NAMES)
            ))
        })
    });
    push("parents", &mut |r, _| {
        Value::Str(format!(
            "{} and {}",
            gen::pick(r, names::FIRST_NAMES),
            gen::pick(r, names::FIRST_NAMES)
        ))
    });
    push("citizenship", &mut |_, _| Value::str("united states"));
    push("occupation", &mut |r, _| {
        Value::str(if r.gen_bool(0.7) {
            "singer"
        } else {
            "singer-songwriter"
        })
    });
    push("active_since", &mut |r, _| {
        Value::Int(r.gen_range(1950..2015))
    });
    push("website", &mut |r, _| {
        gen::maybe_null(r, 0.4, |r| {
            Value::Str(format!(
                "https://artist{}.example.com",
                r.gen_range(0..5000)
            ))
        })
    });
    push("instrument", &mut |r, _| {
        Value::str(gen::pick(r, names::INSTRUMENTS))
    });
    push("vocal_range", &mut |r, _| {
        Value::str(gen::pick(r, names::VOCAL_RANGES))
    });
    push("albums_count", &mut |r, _| Value::Int(r.gen_range(1..40)));
    push("awards", &mut |r, _| {
        Value::str(gen::pick(r, names::AWARDS))
    });
    push("net_worth", &mut |r, _| {
        Value::Int(r.gen_range(1..600) * 1_000_000)
    });
    push("residence", &mut |r, _| {
        Value::str(gen::pick(r, names::CITIES))
    });
    push("height_cm", &mut |r, _| Value::Int(r.gen_range(150..200)));
    push("debut_song", &mut |r, _| Value::Str(gen::sentence(r, 3)));

    Table::new("singers", columns).expect("static schema is valid")
}

/// Produces the *recoded twin*: 6 columns renamed (see [`RENAMES`]) and 6
/// columns' values re-encoded (see [`RECODED`]) while denoting the same
/// facts.
pub fn recode(base: &Table, seed: u64) -> Table {
    let mut rng = column_rng(seed, "recode");
    let columns: Vec<Column> = base
        .columns()
        .iter()
        .map(|col| {
            let new_name = RENAMES
                .iter()
                .find(|(from, _)| *from == col.name())
                .map(|(_, to)| to.to_string())
                .unwrap_or_else(|| col.name().to_string());
            let values: Vec<Value> = if RECODED.contains(&col.name()) {
                col.values()
                    .iter()
                    .map(|v| recode_value(col.name(), v, &mut rng))
                    .collect()
            } else {
                col.values().to_vec()
            };
            Column::new(new_name, values)
        })
        .collect();
    let mut t = Table::new("singers_alt", columns).expect("renames stay unique");
    t.set_name("singers_alt");
    t
}

fn recode_value(column: &str, v: &Value, rng: &mut rand::rngs::StdRng) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    match column {
        // "elvis presley" → "elvis aaron presley"
        "artist_name" => {
            let s = v.render();
            let mut parts: Vec<&str> = s.split(' ').collect();
            let middle = names::FIRST_NAMES[v.render().len() % names::FIRST_NAMES.len()];
            let middle = MIDDLE_NAMES[middle.len() % MIDDLE_NAMES.len()];
            if parts.len() >= 2 {
                parts.insert(1, middle);
            }
            Value::Str(parts.join(" "))
        }
        // "delft" → "delft, netherlands"
        "birth_place" => {
            let country = gen::pick(rng, names::COUNTRIES);
            Value::Str(format!("{}, {}", v.render(), country))
        }
        // centimetres → metres
        "height_cm" => match v.as_f64() {
            Some(cm) => Value::float((cm / 100.0 * 100.0).round() / 100.0),
            None => v.clone(),
        },
        // "grammy award" → "winner: grammy award"
        "awards" => Value::Str(format!("winner: {}", v.render())),
        // 450000000 → "450000000 usd" (currency-annotated string encoding)
        "net_worth" => match v.as_f64() {
            Some(x) => Value::Str(format!("{} usd", x as i64)),
            None => v.clone(),
        },
        // 1935-01-08 → "january 8, 1935"
        "birth_date" => match v {
            Value::Date(d) => {
                const MONTHS: [&str; 12] = [
                    "january",
                    "february",
                    "march",
                    "april",
                    "may",
                    "june",
                    "july",
                    "august",
                    "september",
                    "october",
                    "november",
                    "december",
                ];
                Value::Str(format!(
                    "{} {}, {}",
                    MONTHS[(d.month - 1) as usize],
                    d.day,
                    d.year
                ))
            }
            other => other.clone(),
        },
        _ => v.clone(),
    }
}

/// Ground truth between the base and recoded schema (all 20 columns).
fn full_ground_truth(base: &Table) -> Vec<(String, String)> {
    base.column_names()
        .into_iter()
        .map(|n| {
            let target = RENAMES
                .iter()
                .find(|(from, _)| *from == n)
                .map(|(_, to)| to.to_string())
                .unwrap_or_else(|| n.to_string());
            (n.to_string(), target)
        })
        .collect()
}

/// The four curated WikiData pairs, one per relatedness scenario.
///
/// * **unionable** — both sides keep all 20 columns; 50 % row overlap.
/// * **view-unionable** — disjoint rows; each side keeps 13 shared + some
///   unique columns.
/// * **joinable** — shared join columns chosen from the *non-recoded* set,
///   so value overlap is intact (instance-based methods can reach
///   recall 1.0, as the paper reports).
/// * **semantically-joinable** — shared columns include re-encoded ones, so
///   only semantics (not equality) links the instances.
pub fn pairs(size: SizeClass, seed: u64) -> Vec<DatasetPair> {
    let base = singers(size, seed);
    let twin = recode(&base, seed);
    let gt = full_ground_truth(&base);
    let h = base.height() / 2;
    let rows: Vec<usize> = (0..base.height()).collect();

    let make = |scenario: ScenarioKind,
                src: Table,
                tgt: Table,
                gt: Vec<(String, String)>|
     -> DatasetPair {
        let pair = DatasetPair {
            id: format!("wikidata/{}/curated", scenario.id()),
            source_name: "wikidata".into(),
            scenario,
            noisy_schema: true,
            noisy_instances: true,
            source: src,
            target: tgt,
            ground_truth: gt,
        };
        debug_assert!(pair.validate().is_ok());
        pair
    };

    // --- unionable: all columns, 50% row overlap
    let a_rows = &rows[0..h];
    let b_rows = &rows[h / 2..h / 2 + h];
    let unionable = make(
        ScenarioKind::Unionable,
        base.take_rows(a_rows),
        twin.take_rows(b_rows),
        gt.clone(),
    );

    // --- view-unionable: disjoint rows, shared column subset (13 of 20)
    let shared: Vec<&str> = base.column_names().into_iter().take(13).collect();
    let uniq_a: Vec<&str> = base.column_names().into_iter().skip(13).take(4).collect();
    let uniq_b: Vec<&str> = base.column_names().into_iter().skip(17).collect();
    let cols_a: Vec<&str> = shared.iter().chain(&uniq_a).copied().collect();
    let cols_b_src: Vec<&str> = shared.iter().chain(&uniq_b).copied().collect();
    let cols_b: Vec<String> = cols_b_src
        .iter()
        .map(|n| {
            RENAMES
                .iter()
                .find(|(from, _)| from == n)
                .map(|(_, to)| to.to_string())
                .unwrap_or_else(|| n.to_string())
        })
        .collect();
    let cols_b_refs: Vec<&str> = cols_b.iter().map(String::as_str).collect();
    let view_gt: Vec<(String, String)> = gt
        .iter()
        .filter(|(s, _)| shared.contains(&s.as_str()))
        .cloned()
        .collect();
    let view_unionable = make(
        ScenarioKind::ViewUnionable,
        base.take_rows(&rows[0..h])
            .project(&cols_a)
            .expect("known columns"),
        twin.take_rows(&rows[h..2 * h])
            .project(&cols_b_refs)
            .expect("known columns"),
        view_gt,
    );

    // --- joinable: join columns from the non-recoded, non-renamed set
    let join_cols: Vec<&str> = base
        .column_names()
        .into_iter()
        .filter(|n| !RECODED.contains(n) && !RENAMES.iter().any(|(f, _)| f == n))
        .take(6)
        .collect();
    let extra_a: Vec<&str> = vec![
        "birth_date",
        "genre",
        "awards",
        "partner",
        "citizenship",
        "albums_count",
        "vocal_range",
    ];
    let extra_b: Vec<&str> = vec![
        "net_worth",
        "residence",
        "height_cm",
        "record_label",
        "debut_song",
        "birth_place",
        "artist_name",
    ];
    let cols_a: Vec<&str> = join_cols.iter().chain(&extra_a).copied().collect();
    let cols_b_src: Vec<&str> = join_cols.iter().chain(&extra_b).copied().collect();
    let cols_b: Vec<String> = cols_b_src
        .iter()
        .map(|n| {
            RENAMES
                .iter()
                .find(|(from, _)| from == n)
                .map(|(_, to)| to.to_string())
                .unwrap_or_else(|| n.to_string())
        })
        .collect();
    let cols_b_refs: Vec<&str> = cols_b.iter().map(String::as_str).collect();
    let join_gt: Vec<(String, String)> = join_cols
        .iter()
        .map(|n| (n.to_string(), n.to_string()))
        .collect();
    let joinable = make(
        ScenarioKind::Joinable,
        base.project(&cols_a).expect("known columns"),
        // join columns are not recoded, so values align; rows identical
        twin.project(&cols_b_refs).expect("known columns"),
        join_gt,
    );

    // --- semantically-joinable: shared columns *include* re-encoded ones
    // Side columns are curated (as the paper's pairs were) to avoid
    // accidental cross-domain decoys: person-name columns (birth_name) and
    // the second city column (residence) stay out of this pair so the
    // semantic recoding — not a pool collision — is what the methods fight.
    let sem_shared: Vec<&str> = vec![
        "artist_name",
        "birth_place",
        "awards",
        "net_worth",
        "birth_date",
        "genre",
    ];
    let extra_a: Vec<&str> = vec![
        "instrument",
        "albums_count",
        "parents",
        "occupation",
        "website",
        "partner",
        "height_cm",
    ];
    let extra_b: Vec<&str> = vec![
        "record_label",
        "vocal_range",
        "active_since",
        "debut_song",
        "citizenship",
    ];
    let cols_a: Vec<&str> = sem_shared.iter().chain(&extra_a).copied().collect();
    let cols_b_src: Vec<&str> = sem_shared.iter().chain(&extra_b).copied().collect();
    let cols_b: Vec<String> = cols_b_src
        .iter()
        .map(|n| {
            RENAMES
                .iter()
                .find(|(from, _)| from == n)
                .map(|(_, to)| to.to_string())
                .unwrap_or_else(|| n.to_string())
        })
        .collect();
    let cols_b_refs: Vec<&str> = cols_b.iter().map(String::as_str).collect();
    let sem_gt: Vec<(String, String)> = sem_shared
        .iter()
        .map(|n| {
            let t = RENAMES
                .iter()
                .find(|(f, _)| f == n)
                .map(|(_, to)| to.to_string())
                .unwrap_or_else(|| n.to_string());
            (n.to_string(), t)
        })
        .collect();
    let sem_joinable = make(
        ScenarioKind::SemanticallyJoinable,
        base.project(&cols_a).expect("known columns"),
        twin.project(&cols_b_refs).expect("known columns"),
        sem_gt,
    );

    vec![unionable, view_unionable, joinable, sem_joinable]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_table_shape() {
        let t = singers(SizeClass::Tiny, 0);
        assert_eq!(t.width(), 20);
        assert!(t.height() >= 40);
    }

    #[test]
    fn recode_renames_and_reencodes() {
        let base = singers(SizeClass::Tiny, 0);
        let twin = recode(&base, 0);
        assert!(twin.column("spouse").is_some());
        assert!(twin.column("partner").is_none());
        assert!(twin.column("sound_profile").is_some());
        // artist names gained a middle name
        let a = base.column("artist_name").unwrap().values()[0].render();
        let b = twin.column("artist_name").unwrap().values()[0].render();
        assert_ne!(a, b);
        assert!(b.split(' ').count() > a.split(' ').count());
        // non-recoded columns keep identical values
        assert_eq!(
            base.column("instrument").unwrap().values(),
            twin.column("instrument").unwrap().values()
        );
    }

    #[test]
    fn four_pairs_one_per_scenario() {
        let ps = pairs(SizeClass::Tiny, 0);
        assert_eq!(ps.len(), 4);
        let kinds: Vec<ScenarioKind> = ps.iter().map(|p| p.scenario).collect();
        assert_eq!(kinds, ScenarioKind::ALL.to_vec());
        for p in &ps {
            assert!(p.validate().is_ok(), "{}", p.id);
            assert!(p.ground_truth_size() > 0);
            assert!(
                (13..=20).contains(&p.source.width()),
                "{}",
                p.source.width()
            );
        }
    }

    #[test]
    fn joinable_pair_has_intact_value_overlap() {
        let ps = pairs(SizeClass::Tiny, 0);
        let joinable = &ps[2];
        for (s, t) in &joinable.ground_truth {
            assert_eq!(
                joinable.source.column(s).unwrap().values(),
                joinable.target.column(t).unwrap().values(),
                "join columns must be verbatim"
            );
        }
    }

    #[test]
    fn semantically_joinable_breaks_equality() {
        let ps = pairs(SizeClass::Tiny, 0);
        let sem = &ps[3];
        let broken = sem.ground_truth.iter().any(|(s, t)| {
            sem.source.column(s).unwrap().values() != sem.target.column(t).unwrap().values()
        });
        assert!(broken);
    }

    #[test]
    fn view_unionable_rows_disjoint() {
        let ps = pairs(SizeClass::Tiny, 0);
        let vu = &ps[1];
        // debut values differ — row sets are disjoint halves
        assert_eq!(vu.source.height(), vu.target.height());
    }

    #[test]
    fn deterministic() {
        let a = pairs(SizeClass::Tiny, 5);
        let b = pairs(SizeClass::Tiny, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.target, y.target);
        }
    }
}
