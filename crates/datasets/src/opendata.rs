//! Open-Data-style wide table generator.
//!
//! The paper's second fabricated source is a table from the Table Union
//! Search benchmark (Canada/USA/UK Open Data; `base.sqlite`, second table).
//! Its fabricated variants span 26–51 columns and 11 628–23 255 rows. Open
//! Data tables are characteristically *wide*, categorical-heavy, with coded
//! columns, fiscal periods, and geographic breakdowns. This generator
//! reproduces that shape: a 51-column government-grants table.

use rand::Rng;
use valentine_table::{Column, Table, Value};

use crate::gen::{self, column_rng};
use crate::names;
use crate::SizeClass;

/// Paper-scale row count.
pub const PAPER_ROWS: usize = 23_255;

/// Categorical code pools characteristic of open-data portals.
const PROGRAMS: &[&str] = &[
    "community development",
    "public health",
    "transport infrastructure",
    "education grants",
    "housing support",
    "environmental protection",
    "small business",
    "cultural heritage",
    "digital inclusion",
    "emergency response",
];
const AGENCIES: &[&str] = &[
    "department of finance",
    "ministry of transport",
    "health authority",
    "education board",
    "housing agency",
    "environment agency",
    "treasury",
    "statistics office",
];
const STATUSES: &[&str] = &["approved", "pending", "rejected", "completed", "withdrawn"];
const FUNDING_TYPES: &[&str] = &["grant", "loan", "subsidy", "contribution", "rebate"];
const REGIONS: &[&str] = &[
    "north",
    "south",
    "east",
    "west",
    "central",
    "northeast",
    "northwest",
    "southeast",
    "southwest",
];

/// Generates the 51-column open-data-style table.
pub fn open_data(size: SizeClass, seed: u64) -> Table {
    let rows = size.scale_rows(PAPER_ROWS);
    let mut columns: Vec<Column> = Vec::with_capacity(51);

    let mut push = |name: &str, f: &mut dyn FnMut(&mut rand::rngs::StdRng, usize) -> Value| {
        let mut rng = column_rng(seed, name);
        let values: Vec<Value> = (0..rows).map(|i| f(&mut rng, i)).collect();
        columns.push(Column::new(name, values));
    };

    push("record_id", &mut |_, i| Value::Int(1_000_000 + i as i64));
    push("fiscal_year", &mut |r, _| {
        Value::Int(r.gen_range(2008..2021))
    });
    push("quarter", &mut |r, _| {
        Value::Str(format!("q{}", r.gen_range(1..5)))
    });
    push("program_name", &mut |r, _| {
        Value::str(gen::pick(r, PROGRAMS))
    });
    push("program_code", &mut |r, _| {
        Value::Str(format!("pr-{:03}", r.gen_range(0..100)))
    });
    push("agency_name", &mut |r, _| {
        Value::str(gen::pick(r, AGENCIES))
    });
    push("agency_code", &mut |r, _| {
        Value::Str(format!("ag{:02}", r.gen_range(0..30)))
    });
    push("recipient_name", &mut |r, _| {
        Value::Str(format!(
            "{} {}",
            gen::pick(r, names::FIRST_NAMES),
            gen::pick(r, names::LAST_NAMES)
        ))
    });
    push("recipient_type", &mut |r, _| {
        Value::str(if r.gen_bool(0.4) {
            "organization"
        } else {
            "individual"
        })
    });
    push("recipient_city", &mut |r, _| {
        Value::str(gen::pick(r, names::CITIES))
    });
    push("recipient_region", &mut |r, _| {
        Value::str(gen::pick(r, REGIONS))
    });
    push("recipient_country", &mut |r, _| {
        Value::str(gen::pick(r, names::COUNTRIES))
    });
    push("recipient_postal", &mut |r, _| {
        Value::Str(format!("{:05}", r.gen_range(10_000..99_999)))
    });
    push("funding_type", &mut |r, _| {
        Value::str(gen::pick(r, FUNDING_TYPES))
    });
    push("funding_amount", &mut |r, _| gen::amount(r, 9.5, 1.5));
    push("amount_requested", &mut |r, _| gen::amount(r, 9.8, 1.4));
    push("amount_disbursed", &mut |r, _| gen::amount(r, 9.3, 1.6));
    push("application_date", &mut |r, _| {
        gen::date_between(r, 2008, 2020)
    });
    push("approval_date", &mut |r, _| {
        gen::maybe_null(r, 0.2, |r| gen::date_between(r, 2008, 2020))
    });
    push("start_date", &mut |r, _| gen::date_between(r, 2008, 2021));
    push("end_date", &mut |r, _| gen::date_between(r, 2009, 2022));
    push("status", &mut |r, _| Value::str(gen::pick(r, STATUSES)));
    push("status_code", &mut |r, _| Value::Int(r.gen_range(0..6)));
    push("project_title", &mut |r, _| Value::Str(gen::sentence(r, 4)));
    push("project_summary", &mut |r, _| {
        Value::Str(gen::sentence(r, 12))
    });
    push("beneficiaries", &mut |r, _| {
        Value::Int(r.gen_range(1..50_000))
    });
    push("jobs_created", &mut |r, _| {
        gen::maybe_null(r, 0.4, |r| Value::Int(r.gen_range(0..500)))
    });
    push("jobs_retained", &mut |r, _| {
        gen::maybe_null(r, 0.5, |r| Value::Int(r.gen_range(0..300)))
    });
    push("latitude", &mut |r, _| {
        Value::float(49.0 + r.gen_range(0.0..12.0))
    });
    push("longitude", &mut |r, _| {
        Value::float(-8.0 + r.gen_range(0.0..30.0))
    });
    push("population_served", &mut |r, _| {
        Value::Int(r.gen_range(100..1_000_000))
    });
    push("score", &mut |r, _| {
        Value::float((r.gen_range(0.0..100.0f64) * 10.0).round() / 10.0)
    });
    push("rank", &mut |r, _| Value::Int(r.gen_range(1..1000)));
    push("co_funded", &mut |r, _| Value::Bool(r.gen_bool(0.3)));
    push("renewable", &mut |r, _| Value::Bool(r.gen_bool(0.5)));
    push("audit_flag", &mut |r, _| Value::Bool(r.gen_bool(0.1)));
    push("contact_email", &mut |r, _| {
        Value::Str(format!(
            "{}.{}@example.org",
            gen::pick(r, names::FIRST_NAMES),
            gen::pick(r, names::LAST_NAMES)
        ))
    });
    push("contact_phone", &mut |r, _| gen::phone(r));
    push("website", &mut |r, _| {
        gen::maybe_null(r, 0.3, |r| {
            Value::Str(format!(
                "https://program{}.example.org",
                r.gen_range(0..500)
            ))
        })
    });
    push("reference_number", &mut |r, _| {
        Value::Str(format!("ref-{}", gen::hex_hash(r, 8)))
    });
    push("batch_id", &mut |r, _| Value::Int(r.gen_range(1..200)));
    push("currency", &mut |r, _| {
        Value::str(
            *["eur", "usd", "gbp", "cad"]
                .get(r.gen_range(0..4))
                .expect("in range"),
        )
    });
    push("exchange_rate", &mut |r, _| {
        Value::float(0.8 + r.gen_range(0.0..0.6))
    });
    push("overhead_pct", &mut |r, _| {
        Value::float((r.gen_range(0.0..25.0f64) * 10.0).round() / 10.0)
    });
    push("duration_months", &mut |r, _| {
        Value::Int(r.gen_range(1..60))
    });
    push("extensions", &mut |r, _| Value::Int(r.gen_range(0..4)));
    push("milestones", &mut |r, _| Value::Int(r.gen_range(1..12)));
    push("risk_rating", &mut |r, _| {
        Value::str(gen::pick(r, names::CREDIT_RATINGS))
    });
    push("priority_level", &mut |r, _| {
        Value::str(gen::pick(r, names::PRIORITIES))
    });
    push("last_updated", &mut |r, _| gen::date_between(r, 2019, 2021));
    push("data_source", &mut |r, _| {
        Value::str(if r.gen_bool(0.5) {
            "portal"
        } else {
            "bulk upload"
        })
    });

    Table::new("open_data_grants", columns).expect("static schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use valentine_table::DataType;

    #[test]
    fn schema_is_51_columns() {
        let t = open_data(SizeClass::Tiny, 0);
        assert_eq!(t.width(), 51);
        assert!(t.height() >= 40);
    }

    #[test]
    fn mixed_types_present() {
        let t = open_data(SizeClass::Tiny, 0);
        let types: std::collections::BTreeSet<DataType> =
            t.columns().iter().map(|c| c.dtype()).collect();
        assert!(types.contains(&DataType::Int));
        assert!(types.contains(&DataType::Float));
        assert!(types.contains(&DataType::Str));
        assert!(types.contains(&DataType::Bool));
        assert!(types.contains(&DataType::Date));
    }

    #[test]
    fn deterministic() {
        assert_eq!(open_data(SizeClass::Tiny, 9), open_data(SizeClass::Tiny, 9));
        assert_ne!(
            open_data(SizeClass::Tiny, 9),
            open_data(SizeClass::Tiny, 10)
        );
    }

    #[test]
    fn key_column_unique() {
        let t = open_data(SizeClass::Tiny, 1);
        assert_eq!(t.column("record_id").unwrap().stats().uniqueness(), 1.0);
    }

    #[test]
    fn categorical_columns_low_cardinality() {
        let t = open_data(SizeClass::Small, 2);
        assert!(t.column("status").unwrap().stats().distinct <= STATUSES.len());
        assert!(t.column("currency").unwrap().stats().distinct <= 4);
    }
}
