//! Simulated ING#1 / ING#2 pairs.
//!
//! The paper's industry datasets are proprietary ("we cannot make this
//! dataset public due to privacy constraints"), so this module *simulates*
//! them, preserving every property the paper's analysis relies on:
//!
//! **ING#1** — two SCRUM backlog tables (33 × 935 and 16 × 972). Matching
//! columns have identical or very similar names, values are hashes,
//! descriptions, and words reused across contexts (false-positive bait);
//! matching columns carry *almost-identical value distributions* (why the
//! Distribution-based method wins) while the wide table's many extra
//! structurally-similar columns mislead Similarity Flooding. Ground truth:
//! 14 pairs.
//!
//! **ING#2** — an application-inventory pair (59 × 1000 and 25 × 1000). The
//! narrow table's column names carry suffixes (`_cd`, `_txt`, `_nm`, …); the
//! wide table contains *groups of near-duplicate columns* drawing from the
//! same value pools, and the ground truth maps each narrow column to
//! **multiple** wide columns (one-to-many, 49 pairs) — the property that
//! penalises matchers biased towards 1-1 matchings.

use rand::rngs::StdRng;
use rand::Rng;
use valentine_fabricator::{DatasetPair, ScenarioKind};
use valentine_table::{Column, Table, Value};

use crate::gen::{self, column_rng};
use crate::names;
use crate::SizeClass;

/// What kind of values a simulated column carries. Corresponding columns in
/// the two tables share a kind, so their distributions align.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    SprintId,
    TeamName,
    EpicName,
    TaskId,
    Sentence,
    StoryPoints,
    TaskStatus,
    Priority,
    Person,
    RecentDate,
    Hash,
    Label,
    Count,
    AppName,
    /// Consumer applications: the lower half of the app-name pool (in real
    /// inventories, the "used by" population skews differently than the
    /// canonical name column — this keeps the groups distinguishable by
    /// value distribution, which is what lets the Distribution-based
    /// matcher win ING#2 as in the paper).
    AppNameLow,
    /// Provider applications: the upper half of the app-name pool.
    AppNameHigh,
    AppId,
    Department,
    Platform,
    Version,
    CostCenter,
    SupportLevel,
    Domain,
    LifecycleStatus,
    City,
    Company,
    Email,
    Flag,
    Hours,
}

fn generate(kind: Kind, rng: &mut StdRng, i: usize) -> Value {
    match kind {
        Kind::SprintId => Value::Str(format!("sprint-{}", rng.gen_range(1..120))),
        Kind::TeamName => Value::str(gen::pick(rng, names::TEAM_NAMES)),
        Kind::EpicName => Value::Str(format!(
            "{} {}",
            gen::pick(rng, names::TEAM_NAMES),
            ["migration", "redesign", "hardening", "rollout", "cleanup"][rng.gen_range(0..5)]
        )),
        Kind::TaskId => Value::Str(format!("task-{}", 10_000 + i)),
        Kind::Sentence => Value::Str(format!(
            "{} the {} for {}",
            ["update", "fix", "review", "deploy", "refactor"][rng.gen_range(0..5)],
            ["pipeline", "dashboard", "api", "database", "report"][rng.gen_range(0..5)],
            gen::pick(rng, names::TEAM_NAMES)
        )),
        Kind::StoryPoints => Value::Int([1, 2, 3, 5, 8, 13][rng.gen_range(0..6)]),
        Kind::TaskStatus => Value::str(gen::pick(rng, names::TASK_STATUSES)),
        Kind::Priority => Value::str(gen::pick(rng, names::PRIORITIES)),
        Kind::Person => Value::Str(format!(
            "{} {}",
            gen::pick(rng, names::FIRST_NAMES),
            gen::pick(rng, names::LAST_NAMES)
        )),
        Kind::RecentDate => gen::date_between(rng, 2018, 2021),
        Kind::Hash => Value::Str(gen::hex_hash(rng, 12)),
        Kind::Label => Value::Str(format!(
            "{},{}",
            ["backend", "frontend", "infra", "data", "security"][rng.gen_range(0..5)],
            ["q1", "q2", "q3", "q4"][rng.gen_range(0..4)]
        )),
        Kind::Count => Value::Int(rng.gen_range(0..50)),
        Kind::AppName => Value::str(gen::pick(rng, names::APP_NAMES)),
        Kind::AppNameLow => {
            let half = &names::APP_NAMES[..names::APP_NAMES.len() / 2];
            Value::str(gen::pick(rng, half))
        }
        Kind::AppNameHigh => {
            let half = &names::APP_NAMES[names::APP_NAMES.len() / 2..];
            Value::str(gen::pick(rng, half))
        }
        Kind::AppId => Value::Int(rng.gen_range(1000..1260)),
        Kind::Department => Value::str(gen::pick(rng, names::DEPARTMENTS)),
        Kind::Platform => Value::str(gen::pick(rng, names::PLATFORMS)),
        Kind::Version => Value::Str(format!(
            "{}.{}.{}",
            rng.gen_range(0..6),
            rng.gen_range(0..20),
            rng.gen_range(0..40)
        )),
        Kind::CostCenter => Value::Str(format!("cc-{:04}", rng.gen_range(0..300))),
        Kind::SupportLevel => Value::str(gen::pick(rng, names::SUPPORT_LEVELS)),
        Kind::Domain => Value::str(
            *["payments", "lending", "savings", "daily banking", "markets"]
                .get(rng.gen_range(0..5))
                .expect("in range"),
        ),
        Kind::LifecycleStatus => Value::str(
            *["active", "deprecated", "sunset", "pilot"]
                .get(rng.gen_range(0..4))
                .expect("in range"),
        ),
        Kind::City => Value::str(gen::pick(rng, names::CITIES)),
        Kind::Company => Value::str(gen::pick(rng, names::COMPANIES)),
        Kind::Email => Value::Str(format!(
            "{}.{}@bank.example",
            gen::pick(rng, names::FIRST_NAMES),
            gen::pick(rng, names::LAST_NAMES)
        )),
        Kind::Flag => Value::Bool(rng.gen_bool(0.5)),
        Kind::Hours => Value::Int(rng.gen_range(1..73)),
    }
}

fn build_table(name: &str, rows: usize, seed: u64, spec: &[(&str, Kind)]) -> Table {
    let columns: Vec<Column> = spec
        .iter()
        .map(|(col, kind)| {
            let mut rng = column_rng(seed, col);
            let values: Vec<Value> = (0..rows).map(|i| generate(*kind, &mut rng, i)).collect();
            Column::new(*col, values)
        })
        .collect();
    Table::new(name.to_string(), columns).expect("static schema is valid")
}

/// ING#1: the SCRUM backlog pair (33 × 935 vs 16 × 972; 14 ground-truth
/// pairs).
pub fn ing1(size: SizeClass, seed: u64) -> DatasetPair {
    use Kind::*;
    let wide_spec: [(&str, Kind); 33] = [
        ("sprint_id", SprintId),
        ("sprint_name", EpicName),
        ("sprint_goal", Sentence),
        ("sprint_start_date", RecentDate),
        ("sprint_end_date", RecentDate),
        ("team_id", Count),
        ("team_name", TeamName),
        ("owner_team", TeamName),
        ("epic_id", Count),
        ("epic_name", EpicName),
        ("task_id", TaskId),
        ("task_key", Hash),
        ("task_description", Sentence),
        ("task_hash", Hash),
        ("story_points", StoryPoints),
        ("status", TaskStatus),
        ("resolution", TaskStatus),
        ("priority", Priority),
        ("assignee", Person),
        ("reporter", Person),
        ("created_at", RecentDate),
        ("updated_at", RecentDate),
        ("resolved_at", RecentDate),
        ("time_estimate", Hours),
        ("time_spent", Hours),
        ("labels", Label),
        ("component", Domain),
        ("fix_version", Version),
        ("board_id", Count),
        ("project_key", Hash),
        ("parent_task", TaskId),
        ("watchers", Count),
        ("comments_count", Count),
    ];
    let narrow_spec: [(&str, Kind); 16] = [
        ("sprint_id", SprintId),
        ("team_name", TeamName),
        ("epic_name", EpicName),
        ("task_id", TaskId),
        ("task_summary", Sentence),
        ("story_points", StoryPoints),
        ("status", TaskStatus),
        ("priority", Priority),
        ("assignee", Person),
        ("reporter", Person),
        ("created_dt", RecentDate),
        ("updated_dt", RecentDate),
        ("start_date", RecentDate),
        ("end_date", RecentDate),
        ("board_ref", Hash),
        ("squad_code", CostCenter),
    ];
    let wide_rows = match size {
        SizeClass::Tiny => 60,
        SizeClass::Small => 400,
        SizeClass::Paper => 935,
    };
    let narrow_rows = match size {
        SizeClass::Tiny => 62,
        SizeClass::Small => 416,
        SizeClass::Paper => 972,
    };
    let wide = build_table("backlog_wide", wide_rows, seed, &wide_spec);
    let narrow = build_table("backlog_narrow", narrow_rows, seed ^ 0x1116, &narrow_spec);

    let ground_truth: Vec<(String, String)> = [
        ("sprint_id", "sprint_id"),
        ("team_name", "team_name"),
        ("epic_name", "epic_name"),
        ("task_id", "task_id"),
        ("task_description", "task_summary"),
        ("story_points", "story_points"),
        ("status", "status"),
        ("priority", "priority"),
        ("assignee", "assignee"),
        ("reporter", "reporter"),
        ("created_at", "created_dt"),
        ("updated_at", "updated_dt"),
        ("sprint_start_date", "start_date"),
        ("sprint_end_date", "end_date"),
    ]
    .iter()
    .map(|(a, b)| (a.to_string(), b.to_string()))
    .collect();

    let pair = DatasetPair {
        id: "ing/1".into(),
        source_name: "ing".into(),
        scenario: ScenarioKind::ViewUnionable,
        noisy_schema: true,
        noisy_instances: true,
        source: wide,
        target: narrow,
        ground_truth,
    };
    debug_assert!(pair.validate().is_ok());
    pair
}

/// The ING#2 near-duplicate column groups: (narrow column, wide variants,
/// value kind). Every wide variant is a correct match for the narrow column.
const ING2_GROUPS: &[(&str, &[&str], Kind)] = &[
    (
        "app_nm",
        &["app_name", "app_label", "app_alias"],
        Kind::AppName,
    ),
    (
        "app_id_cd",
        &["app_id", "application_nbr", "asset_id"],
        Kind::AppId,
    ),
    (
        "owner_team_cd",
        &["owner_team", "responsible_team", "support_team"],
        Kind::TeamName,
    ),
    (
        "mgr_nm",
        &["manager_name", "line_manager", "product_owner"],
        Kind::Person,
    ),
    (
        "dept_cd",
        &["department", "business_unit", "division_name"],
        Kind::Department,
    ),
    (
        "platform_txt",
        &["hardware_platform", "os_version", "runtime_platform"],
        Kind::Platform,
    ),
    (
        "criticality_cd",
        &["criticality", "risk_class", "severity_level"],
        Kind::Priority,
    ),
    (
        "version_txt",
        &["version", "release_version"],
        Kind::Version,
    ),
    (
        "cost_center_cd",
        &["cost_center", "budget_code"],
        Kind::CostCenter,
    ),
    (
        "support_lvl_cd",
        &["support_level", "service_tier"],
        Kind::SupportLevel,
    ),
    (
        "used_by_nm",
        &["used_by_app", "downstream_app", "consumer_app"],
        Kind::AppNameLow,
    ),
    (
        "uses_nm",
        &["uses_app", "upstream_app", "provider_app"],
        Kind::AppNameHigh,
    ),
    (
        "domain_txt",
        &["business_domain", "functional_domain"],
        Kind::Domain,
    ),
    (
        "status_cd",
        &["lifecycle_status", "app_status"],
        Kind::LifecycleStatus,
    ),
    (
        "install_dt",
        &["install_date", "go_live_date"],
        Kind::RecentDate,
    ),
    (
        "decomm_dt",
        &["decommission_date", "sunset_date"],
        Kind::RecentDate,
    ),
    ("desc_txt", &["description", "summary_text"], Kind::Sentence),
    (
        "location_txt",
        &["datacenter_location", "hosting_site"],
        Kind::City,
    ),
    ("vendor_nm", &["vendor_name", "supplier"], Kind::Company),
    ("users_cnt", &["user_count", "active_users"], Kind::Count),
];

/// Wide-only filler columns for ING#2.
const ING2_WIDE_EXTRAS: &[(&str, Kind)] = &[
    ("record_hash", Kind::Hash),
    ("etl_batch", Kind::Count),
    ("snapshot_date", Kind::RecentDate),
    ("source_system", Kind::AppName),
    ("row_version", Kind::Count),
    ("audit_user", Kind::Person),
    ("compliance_flag", Kind::Flag),
    ("encryption_flag", Kind::Flag),
    ("backup_policy", Kind::SupportLevel),
    ("sla_hours", Kind::Hours),
];

/// Narrow-only columns for ING#2.
const ING2_NARROW_EXTRAS: &[(&str, Kind)] = &[
    ("review_dt", Kind::RecentDate),
    ("owner_email", Kind::Email),
    ("confidentiality_cd", Kind::Priority),
    ("integrity_cd", Kind::Priority),
    ("availability_cd", Kind::Priority),
];

/// ING#2: the application-inventory pair (59 × 1000 vs 25 × 1000;
/// one-to-many ground truth with 49 pairs).
pub fn ing2(size: SizeClass, seed: u64) -> DatasetPair {
    let rows = match size {
        SizeClass::Tiny => 64,
        SizeClass::Small => 500,
        SizeClass::Paper => 1000,
    };

    let mut wide_spec: Vec<(&str, Kind)> = Vec::with_capacity(59);
    for (_, variants, kind) in ING2_GROUPS {
        for v in *variants {
            wide_spec.push((v, *kind));
        }
    }
    wide_spec.extend_from_slice(ING2_WIDE_EXTRAS);

    let mut narrow_spec: Vec<(&str, Kind)> =
        ING2_GROUPS.iter().map(|(n, _, kind)| (*n, *kind)).collect();
    narrow_spec.extend_from_slice(ING2_NARROW_EXTRAS);

    // Key construction detail: every column of one group draws from the same
    // small value pool, so the group's columns hold near-identical
    // distributions even though each column has its own RNG stream.
    let wide = build_table("apps_wide", rows, seed, &wide_spec);
    let narrow = build_table("apps_narrow", rows, seed ^ 0x1262, &narrow_spec);

    // One-to-many ground truth: each wide variant ↔ the narrow group column.
    let ground_truth: Vec<(String, String)> = ING2_GROUPS
        .iter()
        .flat_map(|(n, variants, _)| variants.iter().map(move |v| (v.to_string(), n.to_string())))
        .collect();

    let pair = DatasetPair {
        id: "ing/2".into(),
        source_name: "ing".into(),
        scenario: ScenarioKind::ViewUnionable,
        noisy_schema: true,
        noisy_instances: true,
        source: wide,
        target: narrow,
        ground_truth,
    };
    debug_assert!(pair.validate().is_ok());
    pair
}

/// Both ING pairs.
pub fn pairs(size: SizeClass, seed: u64) -> Vec<DatasetPair> {
    vec![ing1(size, seed), ing2(size, seed)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ing1_shape() {
        let p = ing1(SizeClass::Tiny, 0);
        assert_eq!(p.source.width(), 33);
        assert_eq!(p.target.width(), 16);
        assert_eq!(p.ground_truth_size(), 14);
        assert!(p.validate().is_ok());
        assert_ne!(p.source.height(), p.target.height());
    }

    #[test]
    fn ing1_identifiers() {
        let p = ing1(SizeClass::Tiny, 0);
        assert_eq!(p.id, "ing/1");
        assert_eq!(p.source_name, "ing");
    }

    #[test]
    fn ing1_matching_columns_share_distributions() {
        let p = ing1(SizeClass::Small, 0);
        // status columns in both tables draw from the same pool
        let s = p.source.column("status").unwrap().rendered_value_set();
        let t = p.target.column("status").unwrap().rendered_value_set();
        assert!(s.intersection(&t).count() >= 4, "same categorical pool");
        // hashes are unique-ish noise
        let h = p.source.column("task_hash").unwrap().stats().uniqueness();
        assert!(h > 0.95);
    }

    #[test]
    fn ing2_shape_and_multimatch_truth() {
        let p = ing2(SizeClass::Tiny, 0);
        assert_eq!(p.source.width(), 59);
        assert_eq!(p.target.width(), 25);
        assert_eq!(p.ground_truth_size(), 49);
        assert!(p.validate().is_ok());
        // one-to-many: some narrow column appears ≥3 times as a target
        let max_fanin = p.ground_truth.iter().filter(|(_, t)| t == "app_nm").count();
        assert_eq!(max_fanin, 3);
    }

    #[test]
    fn ing2_group_columns_share_pools() {
        let p = ing2(SizeClass::Small, 0);
        let a = p.source.column("app_name").unwrap().rendered_value_set();
        let b = p.source.column("app_label").unwrap().rendered_value_set();
        let n = p.target.column("app_nm").unwrap().rendered_value_set();
        assert!(
            a.intersection(&b).count() >= 10,
            "wide variants share a pool"
        );
        assert!(
            a.intersection(&n).count() >= 10,
            "narrow column shares it too"
        );
    }

    #[test]
    fn narrow_names_are_suffixed() {
        let p = ing2(SizeClass::Tiny, 0);
        let suffixed = p
            .target
            .column_names()
            .iter()
            .filter(|n| {
                n.ends_with("_cd")
                    || n.ends_with("_txt")
                    || n.ends_with("_nm")
                    || n.ends_with("_dt")
                    || n.ends_with("_cnt")
            })
            .count();
        assert!(suffixed >= 20, "got {suffixed}");
    }

    #[test]
    fn deterministic() {
        let a = pairs(SizeClass::Tiny, 1);
        let b = pairs(SizeClass::Tiny, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.target, y.target);
        }
    }
}
