//! TPC-DI `Prospect`-style table generator.
//!
//! The paper fabricates 180 pairs from the `Prospect` table of TPC-DI 1.1.0
//! at scale factor 3 (fabricated variants: 11–22 columns, 7 492–14 983
//! rows). `Prospect` holds customer-prospect records: identity, address,
//! demographics, and financial attributes. This generator reproduces the
//! published schema and value shapes synthetically.

use rand::Rng;
use valentine_table::{Column, Table, Value};

use crate::gen::{self, column_rng};
use crate::names;
use crate::SizeClass;

/// Paper-scale row count (so halves land in the published 7 492–14 983 range).
pub const PAPER_ROWS: usize = 14_983;

/// Generates the Prospect-style table: 22 columns of identity, address,
/// demographic, and financial data.
pub fn prospect(size: SizeClass, seed: u64) -> Table {
    let rows = size.scale_rows(PAPER_ROWS);
    let mut columns: Vec<Column> = Vec::with_capacity(22);

    macro_rules! col {
        ($name:literal, $rng:ident, $body:expr) => {{
            let mut $rng = column_rng(seed, $name);
            let values: Vec<Value> = (0..rows).map(|_i| $body).collect();
            columns.push(Column::new($name, values));
        }};
        (idx $name:literal, $rng:ident, $i:ident, $body:expr) => {{
            let mut $rng = column_rng(seed, $name);
            let values: Vec<Value> = (0..rows).map(|$i| $body).collect();
            let _ = &mut $rng;
            columns.push(Column::new($name, values));
        }};
    }

    col!(idx "agency_id", r, i, {
        let _ = &mut r;
        Value::Int(500_000 + i as i64)
    });
    col!(
        "last_name",
        r,
        Value::str(gen::pick(&mut r, names::LAST_NAMES))
    );
    col!(
        "first_name",
        r,
        Value::str(gen::pick(&mut r, names::FIRST_NAMES))
    );
    col!("middle_initial", r, {
        gen::maybe_null(&mut r, 0.3, |r| {
            Value::Str(char::from(b'a' + r.gen_range(0..26u8)).to_string())
        })
    });
    col!(
        "gender",
        r,
        Value::str(if r.gen_bool(0.5) { "m" } else { "f" })
    );
    col!("address_line1", r, {
        Value::Str(format!(
            "{} {}",
            r.gen_range(1..2000),
            gen::pick(&mut r, names::STREETS)
        ))
    });
    col!("address_line2", r, {
        gen::maybe_null(&mut r, 0.7, |r| {
            Value::Str(format!("apt {}", r.gen_range(1..400)))
        })
    });
    col!(
        "postal_code",
        r,
        Value::Str(format!("{:05}", r.gen_range(10_000..99_999)))
    );
    col!("city", r, Value::str(gen::pick(&mut r, names::CITIES)));
    col!("state", r, Value::str(gen::pick(&mut r, names::STATES)));
    col!(
        "country",
        r,
        Value::str(gen::pick(&mut r, names::COUNTRIES))
    );
    col!("phone", r, gen::phone(&mut r));
    col!(
        "income",
        r,
        Value::Int((30_000.0 + gen::gaussian(&mut r).abs() * 40_000.0) as i64)
    );
    col!("number_cars", r, Value::Int(r.gen_range(0..4)));
    col!("number_children", r, Value::Int(r.gen_range(0..5)));
    col!(
        "marital_status",
        r,
        Value::str(gen::pick(&mut r, names::MARITAL_STATUSES))
    );
    col!("age", r, Value::Int(r.gen_range(18..90)));
    col!(
        "credit_rating",
        r,
        Value::str(gen::pick(&mut r, names::CREDIT_RATINGS))
    );
    col!(
        "own_or_rent",
        r,
        Value::str(if r.gen_bool(0.6) { "own" } else { "rent" })
    );
    col!(
        "employer",
        r,
        Value::str(gen::pick(&mut r, names::COMPANIES))
    );
    col!("number_credit_cards", r, Value::Int(r.gen_range(0..9)));
    col!("net_worth", r, gen::amount(&mut r, 11.5, 1.2));

    Table::new("prospect", columns).expect("static schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use valentine_table::DataType;

    #[test]
    fn schema_matches_paper_shape() {
        let t = prospect(SizeClass::Tiny, 0);
        assert_eq!(t.width(), 22);
        assert!(t.height() >= 40);
        assert_eq!(t.column("income").unwrap().dtype(), DataType::Int);
        assert_eq!(t.column("net_worth").unwrap().dtype(), DataType::Float);
        assert_eq!(t.column("last_name").unwrap().dtype(), DataType::Str);
    }

    #[test]
    fn paper_scale_rows() {
        // don't generate the full table in tests; just check the plan
        assert_eq!(SizeClass::Paper.scale_rows(PAPER_ROWS), 14_983);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(prospect(SizeClass::Tiny, 1), prospect(SizeClass::Tiny, 1));
        assert_ne!(prospect(SizeClass::Tiny, 1), prospect(SizeClass::Tiny, 2));
    }

    #[test]
    fn agency_id_is_key_like() {
        let t = prospect(SizeClass::Tiny, 3);
        let c = t.column("agency_id").unwrap();
        assert_eq!(c.stats().uniqueness(), 1.0);
    }

    #[test]
    fn sparse_columns_have_nulls() {
        let t = prospect(SizeClass::Small, 4);
        assert!(t.column("address_line2").unwrap().stats().nulls > 0);
        assert!(t.column("middle_initial").unwrap().stats().nulls > 0);
    }

    #[test]
    fn value_ranges_sane() {
        let t = prospect(SizeClass::Tiny, 5);
        let age = t.column("age").unwrap().stats();
        assert!(age.min.unwrap() >= 18.0 && age.max.unwrap() < 90.0);
        let income = t.column("income").unwrap().stats();
        assert!(income.min.unwrap() >= 30_000.0);
    }
}
