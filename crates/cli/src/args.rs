//! Tiny flag parser (no external dependency per the workspace policy).

use std::collections::BTreeMap;

/// Parsed positional arguments and `--flag value` / `--flag` options.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options; bare `--key` stores an empty string.
    pub options: BTreeMap<String, String>,
}

/// Splits `argv` into positionals and options. `known_bare` lists flags that
/// take no value.
pub fn parse(argv: &[String], known_bare: &[&str]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(key) = a.strip_prefix("--") {
            if known_bare.contains(&key) {
                out.options.insert(key.to_string(), String::new());
            } else {
                i += 1;
                let value = argv
                    .get(i)
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                out.options.insert(key.to_string(), value.clone());
            }
        } else {
            out.positional.push(a.clone());
        }
        i += 1;
    }
    Ok(out)
}

impl Parsed {
    /// A required positional argument by index.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument: {what}"))
    }

    /// An optional option value.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required option value.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.opt(key)
            .ok_or_else(|| format!("missing option --{key}"))
    }

    /// True when a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// An option parsed into a type with a default.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse `{raw}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mixes_positionals_and_options() {
        let p = parse(
            &argv(&["a.csv", "--method", "coma", "b.csv", "--one-to-one"]),
            &["one-to-one"],
        )
        .unwrap();
        assert_eq!(p.positional, vec!["a.csv", "b.csv"]);
        assert_eq!(p.opt("method"), Some("coma"));
        assert!(p.flag("one-to-one"));
        assert!(!p.flag("verbose"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["--method"]), &[]).is_err());
    }

    #[test]
    fn typed_options() {
        let p = parse(&argv(&["--top", "15"]), &[]).unwrap();
        assert_eq!(p.opt_parse("top", 10usize).unwrap(), 15);
        assert_eq!(p.opt_parse("seed", 7u64).unwrap(), 7);
        let bad = parse(&argv(&["--top", "x"]), &[]).unwrap();
        assert!(bad.opt_parse("top", 10usize).is_err());
    }

    #[test]
    fn required_accessors() {
        let p = parse(&argv(&["file.csv"]), &[]).unwrap();
        assert_eq!(p.positional(0, "input").unwrap(), "file.csv");
        assert!(p.positional(1, "second input").is_err());
        assert!(p.required("truth").is_err());
    }
}
