//! `valentine` — the command-line face of the suite.
//!
//! ```text
//! valentine methods
//! valentine match <a.csv> <b.csv> [--method NAME] [--top K] [--one-to-one] [--threshold T]
//! valentine fabricate --source NAME --scenario NAME [--size S] [--seed N] [--out DIR]
//! valentine evaluate <a.csv> <b.csv> --truth <gt.tsv> [--method NAME]
//! valentine run [--size S] [--seed N] [--source NAME]
//! valentine trace report <trace.jsonl>
//! valentine index build --out FILE [--csv-dir DIR | --size S --per-source N]
//! valentine index search <index-file> --query <q.csv> [--mode unionable|joinable]
//! valentine index eval [--size S] [--per-source N] [--k K] [--method NAME]
//! valentine index info <index-file>
//! valentine index verify [--deep] <index>
//! valentine serve <index-file> [--port P] [--deadline-ms MS] [--method NAME]
//! ```
//!
//! The global `--trace <path>` flag (any command) enables instrumentation
//! and writes a JSONL trace; `valentine trace report` renders it.

use std::path::PathBuf;

mod args;
mod commands;

fn main() {
    // Exit quietly when stdout closes early (`valentine methods | head`):
    // the default Rust behaviour is a panic on the failed print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match peel_trace(&mut argv).and_then(|trace| run(&argv, trace)) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("valentine: {e}");
            2
        }
    };
    std::process::exit(code);
}

/// Removes the global `--trace <path>` flag from `argv` and returns the
/// path, so every subcommand's own parser stays oblivious to it.
fn peel_trace(argv: &mut Vec<String>) -> Result<Option<PathBuf>, String> {
    let Some(i) = argv.iter().position(|a| a == "--trace") else {
        return Ok(None);
    };
    if i + 1 >= argv.len() {
        return Err("option --trace needs a value".into());
    }
    let path = argv.remove(i + 1);
    argv.remove(i);
    if argv.iter().any(|a| a == "--trace") {
        return Err("option --trace given more than once".into());
    }
    Ok(Some(PathBuf::from(path)))
}

/// Dispatches a command, returning the process exit code. `valentine run`
/// is the only command with a non-binary exit: it reports code 1 when a
/// method's whole grid failed (see [`commands::run_experiments`]).
fn run(argv: &[String], trace: Option<PathBuf>) -> Result<i32, String> {
    if trace.is_some() {
        valentine_core::obs::set_enabled(true);
    }
    match argv.first().map(String::as_str) {
        Some("methods") => {
            commands::methods();
            Ok(())
        }
        Some("match") => commands::match_files(&argv[1..]),
        Some("fabricate") => commands::fabricate(&argv[1..]),
        Some("evaluate") => commands::evaluate(&argv[1..]),
        // `run` streams experiment records into the trace itself.
        Some("run") => return commands::run_experiments(&argv[1..], trace.as_deref()),
        Some("trace") => commands::trace(&argv[1..]),
        // `index verify` reports corruption through its exit code, so the
        // snapshot-trace postlude runs here before the early return.
        Some("index") => {
            let code = commands::index(&argv[1..])?;
            if let Some(path) = &trace {
                commands::write_snapshot_trace(path)?;
            }
            return Ok(code);
        }
        // `serve` flushes its own trace on graceful shutdown.
        Some("serve") => return commands::serve(&argv[1..], trace.as_deref()),
        Some("--help" | "-h" | "help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `valentine help`)")),
    }?;
    // Any other traced command gets a snapshot-only trace (spans, counters,
    // histograms — e.g. the index search metrics).
    if let Some(path) = &trace {
        commands::write_snapshot_trace(path)?;
    }
    Ok(0)
}
