//! `valentine` — the command-line face of the suite.
//!
//! ```text
//! valentine methods
//! valentine match <a.csv> <b.csv> [--method NAME] [--top K] [--one-to-one] [--threshold T]
//! valentine fabricate --source NAME --scenario NAME [--size S] [--seed N] [--out DIR]
//! valentine evaluate <a.csv> <b.csv> --truth <gt.tsv> [--method NAME]
//! valentine index build --out FILE [--csv-dir DIR | --size S --per-source N]
//! valentine index search <index-file> --query <q.csv> [--mode unionable|joinable]
//! valentine index eval [--size S] [--per-source N] [--k K] [--method NAME]
//! valentine index info <index-file>
//! ```

mod args;
mod commands;

fn main() {
    // Exit quietly when stdout closes early (`valentine methods | head`):
    // the default Rust behaviour is a panic on the failed print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("valentine: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("methods") => {
            commands::methods();
            Ok(())
        }
        Some("match") => commands::match_files(&argv[1..]),
        Some("fabricate") => commands::fabricate(&argv[1..]),
        Some("evaluate") => commands::evaluate(&argv[1..]),
        Some("index") => commands::index(&argv[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `valentine help`)")),
    }
}
