//! Command implementations.

use std::fs;

use valentine_core::prelude::*;
use valentine_core::select::{extract_hungarian, extract_threshold_delta};
use valentine_core::table::csv;
use valentine_core::{average_precision, mean_reciprocal_rank, ndcg_at_k};

use crate::args;

/// Top-level usage text.
pub const USAGE: &str = "\
valentine — schema matching for dataset discovery (Valentine, ICDE 2021)

USAGE:
  valentine methods
      List the available matching methods.

  valentine match <a.csv> <b.csv> [--method NAME] [--top K]
                  [--one-to-one] [--threshold T]
      Rank column correspondences between two CSV files.
      --method      method name (default: coma-instance); see `methods`
      --top         how many ranked matches to print (default: 10)
      --one-to-one  extract a 1-1 mapping (Hungarian) instead of a ranking
      --threshold   minimum score for --one-to-one (default: 0.5)

  valentine fabricate --source NAME --scenario NAME
                      [--size tiny|small|paper] [--seed N] [--out DIR]
      Fabricate a benchmark pair with ground truth from a bundled source
      (tpcdi | opendata | chembl). Writes source.csv, target.csv and
      ground_truth.tsv to --out (default: .).
      --scenario    unionable | view-unionable | joinable |
                    semantically-joinable

  valentine evaluate <a.csv> <b.csv> --truth <gt.tsv> [--method NAME]
      Run a matcher on two CSV files and score it against a ground-truth
      TSV (two tab-separated columns: source_column, target_column).
";

/// Builds a matcher from its CLI name.
fn matcher_by_name(name: &str) -> Result<Box<dyn Matcher>, String> {
    Ok(match name {
        "cupid" => Box::new(CupidMatcher::default_config()),
        "similarity-flooding" | "sf" => Box::new(SimilarityFloodingMatcher::new()),
        "coma-schema" => Box::new(ComaMatcher::new(ComaStrategy::Schema)),
        "coma-instance" | "coma" => Box::new(ComaMatcher::new(ComaStrategy::Instance)),
        "distribution" | "dist" => Box::new(DistributionMatcher::dist1()),
        "distribution-loose" => Box::new(DistributionMatcher::dist2()),
        "semprop" => Box::new(SemPropMatcher::default_config()),
        "embdi" => Box::new(EmbdiMatcher::small_config()),
        "jaccard-levenshtein" | "jl" => Box::new(JaccardLevenshteinMatcher::new(0.8)),
        "approx-overlap" | "lsh" => Box::new(ApproxOverlapMatcher::new()),
        other => return Err(format!("unknown method `{other}` (see `valentine methods`)")),
    })
}

/// `valentine methods`
pub fn methods() {
    println!("{:<22} {:<16} match types", "name", "class");
    for kind in MatcherKind::ALL {
        let types: Vec<&str> = kind.match_types().iter().map(|t| t.label()).collect();
        let name = match kind {
            MatcherKind::Cupid => "cupid",
            MatcherKind::SimilarityFlooding => "similarity-flooding",
            MatcherKind::ComaSchema => "coma-schema",
            MatcherKind::ComaInstance => "coma-instance",
            MatcherKind::DistributionDist1 => "distribution",
            MatcherKind::DistributionDist2 => "distribution-loose",
            MatcherKind::SemProp => "semprop",
            MatcherKind::EmbDI => "embdi",
            MatcherKind::JaccardLevenshtein => "jaccard-levenshtein",
        };
        println!("{:<22} {:<16} {}", name, kind.class(), types.join(", "));
    }
    println!(
        "{:<22} {:<16} Value Overlap (LSH-approximate, extension)",
        "approx-overlap", "instance-based"
    );
}

fn load_table(path: &str) -> Result<Table, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_string();
    csv::parse(name, &text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

/// `valentine match`
pub fn match_files(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &["one-to-one"])?;
    let a = load_table(p.positional(0, "first CSV file")?)?;
    let b = load_table(p.positional(1, "second CSV file")?)?;
    let matcher = matcher_by_name(p.opt("method").unwrap_or("coma-instance"))?;
    let top: usize = p.opt_parse("top", 10)?;
    let threshold: f64 = p.opt_parse("threshold", 0.5)?;

    let ranked = matcher
        .match_tables(&a, &b)
        .map_err(|e| format!("matching failed: {e}"))?;

    if p.flag("one-to-one") {
        let mapping = extract_hungarian(&ranked, threshold);
        println!("1-1 mapping ({} with score ≥ {threshold}):", mapping.len());
        for m in &mapping {
            println!("  {} -> {}  ({:.4})", m.source, m.target, m.score);
        }
    } else {
        println!(
            "top {} of {} ranked correspondences ({}):",
            top.min(ranked.len()),
            ranked.len(),
            matcher.name()
        );
        for (i, m) in ranked.top_k(top).iter().enumerate() {
            println!("  {:>3}. {} <-> {}  ({:.4})", i + 1, m.source, m.target, m.score);
        }
    }
    Ok(())
}

/// `valentine fabricate`
pub fn fabricate(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let source_name = p.required("source")?;
    let scenario = p.required("scenario")?;
    let size = match p.opt("size").unwrap_or("small") {
        "tiny" => SizeClass::Tiny,
        "small" => SizeClass::Small,
        "paper" => SizeClass::Paper,
        other => return Err(format!("unknown size `{other}`")),
    };
    let seed: u64 = p.opt_parse("seed", 42)?;
    let out_dir = p.opt("out").unwrap_or(".").to_string();

    let table = match source_name {
        "tpcdi" => valentine_core::datasets::tpcdi::prospect(size, seed),
        "opendata" => valentine_core::datasets::opendata::open_data(size, seed),
        "chembl" => valentine_core::datasets::chembl::assays(size, seed),
        other => {
            return Err(format!(
                "unknown source `{other}` (tpcdi | opendata | chembl)"
            ))
        }
    };
    let spec = match scenario {
        "unionable" => ScenarioSpec::unionable(0.5, SchemaNoise::Noisy, InstanceNoise::Verbatim),
        "view-unionable" => {
            ScenarioSpec::view_unionable(0.5, SchemaNoise::Noisy, InstanceNoise::Verbatim)
        }
        "joinable" => ScenarioSpec::joinable(0.3, false, SchemaNoise::Noisy),
        "semantically-joinable" => {
            ScenarioSpec::semantically_joinable(0.3, false, SchemaNoise::Noisy)
        }
        other => return Err(format!("unknown scenario `{other}`")),
    };
    let pair = fabricate_pair(&table, &spec, seed).map_err(|e| e.to_string())?;

    fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create `{out_dir}`: {e}"))?;
    let write = |name: &str, content: String| -> Result<(), String> {
        let path = format!("{out_dir}/{name}");
        fs::write(&path, content).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    write("source.csv", csv::serialize(&pair.source))?;
    write("target.csv", csv::serialize(&pair.target))?;
    let mut gt = String::from("source_column\ttarget_column\n");
    for (s, t) in &pair.ground_truth {
        gt.push_str(&format!("{s}\t{t}\n"));
    }
    write("ground_truth.tsv", gt)?;
    println!(
        "pair `{}`: {}x{} vs {}x{}, {} expected correspondences",
        pair.id,
        pair.source.width(),
        pair.source.height(),
        pair.target.width(),
        pair.target.height(),
        pair.ground_truth_size()
    );
    Ok(())
}

/// `valentine evaluate`
pub fn evaluate(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let a = load_table(p.positional(0, "first CSV file")?)?;
    let b = load_table(p.positional(1, "second CSV file")?)?;
    let truth_path = p.required("truth")?;
    let matcher = matcher_by_name(p.opt("method").unwrap_or("coma-instance"))?;

    let truth_text = fs::read_to_string(truth_path)
        .map_err(|e| format!("cannot read `{truth_path}`: {e}"))?;
    let ground_truth: Vec<(String, String)> = truth_text
        .lines()
        .skip(1) // header
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split('\t');
            match (it.next(), it.next()) {
                (Some(s), Some(t)) => Ok((s.to_string(), t.to_string())),
                _ => Err(format!("malformed ground-truth line: `{l}`")),
            }
        })
        .collect::<Result<_, _>>()?;
    if ground_truth.is_empty() {
        return Err("ground truth is empty".into());
    }

    let start = std::time::Instant::now();
    let ranked = matcher
        .match_tables(&a, &b)
        .map_err(|e| format!("matching failed: {e}"))?;
    let elapsed = start.elapsed();

    let k = ground_truth.len();
    println!("method:            {}", matcher.name());
    println!("ground truth size: {k}");
    println!("recall@GT:         {:.4}", recall_at_ground_truth(&ranked, &ground_truth));
    println!("MRR:               {:.4}", mean_reciprocal_rank(&ranked, &ground_truth));
    println!("MAP:               {:.4}", average_precision(&ranked, &ground_truth));
    println!("nDCG@{k}:          {:.4}", ndcg_at_k(&ranked, &ground_truth, k));
    println!("runtime:           {:.3}s", elapsed.as_secs_f64());
    // the COMA-style near-tie view for human review
    let review = extract_threshold_delta(&ranked, 0.5, 0.05);
    println!("candidates ≥0.5 within δ=0.05 of each source's best: {}", review.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("valentine_cli_test_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn matcher_names_resolve() {
        for name in [
            "cupid", "similarity-flooding", "sf", "coma-schema", "coma-instance", "coma",
            "distribution", "dist", "distribution-loose", "semprop", "embdi",
            "jaccard-levenshtein", "jl", "approx-overlap", "lsh",
        ] {
            assert!(matcher_by_name(name).is_ok(), "{name}");
        }
        assert!(matcher_by_name("quantum").is_err());
    }

    #[test]
    fn fabricate_then_evaluate_roundtrip() {
        let dir = temp_dir("roundtrip");
        let out = dir.to_str().unwrap();
        fabricate(&argv(&[
            "--source", "tpcdi", "--scenario", "joinable", "--size", "tiny", "--seed", "4",
            "--out", out,
        ]))
        .expect("fabricate works");
        for f in ["source.csv", "target.csv", "ground_truth.tsv"] {
            assert!(dir.join(f).exists(), "{f}");
        }
        let src = format!("{out}/source.csv");
        let tgt = format!("{out}/target.csv");
        let truth = format!("{out}/ground_truth.tsv");
        evaluate(&argv(&[&src, &tgt, "--truth", &truth, "--method", "coma-instance"]))
            .expect("evaluate works");
        match_files(&argv(&[&src, &tgt, "--method", "jl", "--top", "3"]))
            .expect("match works");
        match_files(&argv(&[&src, &tgt, "--one-to-one", "--threshold", "0.6"]))
            .expect("one-to-one works");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fabricate_rejects_unknown_inputs() {
        assert!(fabricate(&argv(&["--source", "ghost", "--scenario", "joinable"])).is_err());
        assert!(fabricate(&argv(&["--source", "tpcdi", "--scenario", "ghost"])).is_err());
        assert!(fabricate(&argv(&["--source", "tpcdi"])).is_err(), "scenario required");
    }

    #[test]
    fn evaluate_rejects_bad_truth() {
        let dir = temp_dir("badtruth");
        let csv_path = dir.join("t.csv");
        fs::write(&csv_path, "a,b\n1,2\n").unwrap();
        let empty_truth = dir.join("gt.tsv");
        fs::write(&empty_truth, "source_column\ttarget_column\n").unwrap();
        let c = csv_path.to_str().unwrap();
        let g = empty_truth.to_str().unwrap();
        assert!(evaluate(&argv(&[c, c, "--truth", g])).is_err(), "empty truth rejected");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn match_files_reports_missing_inputs() {
        assert!(match_files(&argv(&["/nonexistent/a.csv", "/nonexistent/b.csv"])).is_err());
        assert!(match_files(&argv(&[])).is_err());
    }
}
