//! Command implementations.

use std::fs;
use std::path::Path;

use valentine_core::checkpoint;
use valentine_core::fault::{FaultPlan, FaultyMatcher};
use valentine_core::prelude::*;
use valentine_core::select::{extract_hungarian, extract_threshold_delta};
use valentine_core::table::csv;
use valentine_core::trace::{
    parse_trace, render_flame, render_request_report, render_trace_report, TraceSink,
};
use valentine_core::{average_precision, mean_reciprocal_rank, ndcg_at_k};

use crate::args;

/// Top-level usage text.
pub const USAGE: &str = "\
valentine — schema matching for dataset discovery (Valentine, ICDE 2021)

USAGE:
  valentine methods
      List the available matching methods.

  valentine match <a.csv> <b.csv> [--method NAME] [--top K]
                  [--one-to-one] [--threshold T]
      Rank column correspondences between two CSV files.
      --method      method name (default: coma-instance); see `methods`
      --top         how many ranked matches to print (default: 10)
      --one-to-one  extract a 1-1 mapping (Hungarian) instead of a ranking
      --threshold   minimum score for --one-to-one (default: 0.5)

  valentine fabricate --source NAME --scenario NAME
                      [--size tiny|small|paper] [--seed N] [--out DIR]
      Fabricate a benchmark pair with ground truth from a bundled source
      (tpcdi | opendata | chembl). Writes source.csv, target.csv and
      ground_truth.tsv to --out (default: .).
      --scenario    unionable | view-unionable | joinable |
                    semantically-joinable

  valentine evaluate <a.csv> <b.csv> --truth <gt.tsv> [--method NAME]
      Run a matcher on two CSV files and score it against a ground-truth
      TSV (two tab-separated columns: source_column, target_column).

  valentine run [--size tiny|small|paper] [--seed N]
                [--source tpcdi|opendata|chembl] [--grid] [--threads T]
                [--task-deadline MS] [--run-deadline MS] [--retry-on-timeout]
                [--checkpoint FILE] [--resume FILE] [--summary FILE]
                [--fault PLAN]
      Run every method's default configuration over fabricated unionable
      and joinable pairs and print a per-method summary. With --trace this
      is the quickest way to produce a full runtime-attribution trace.
      Exit code 1 when a method's every run failed.
      --grid     run every method's full Table II parameter grid instead,
                 scheduled as (pair × method) tasks over a worker pool;
                 config-invariant preparation is shared across each grid
      --threads  worker pool width (default: all cores with --grid, else 1)
      --task-deadline    wall-clock budget per (pair × method) task in
                 milliseconds; overrunning configurations become `deadline
                 exceeded` records while the rest of the grid completes
      --run-deadline     wall-clock budget for the whole run; once spent,
                 unfinished tasks drain into `deadline exceeded` records
      --retry-on-timeout retry each timed-out configuration once with the
                 method's halved-budget sibling (same grid cell)
      --checkpoint       journal every finished record to FILE (fsync'd
                 JSONL) so a crashed run can be resumed
      --resume   skip every cell FILE marks complete and carry its records
                 into the final report; errored cells re-run. Pass the same
                 FILE to --checkpoint to keep journaling into it
      --summary  write the deterministic runtime-free per-method summary to
                 FILE (byte-identical between a resumed and a clean run)
      --fault    inject scripted faults, e.g. `hang@5,error@12,exit@135`
                 (kinds: panic | hang | error | garbage | exit; `kind@*`
                 fires every invocation) — the resilience test harness
      --profile-hz       sample every worker's live span stack HZ times
                 per second and write the folded stacks into the trace
                 (needs --trace); render with `valentine trace flame`

  valentine trace report <trace.jsonl> [--request ID]
      Render a trace written via --trace: per-method phase breakdown
      (prepare / profile / similarity / solve / rank / score shares of
      runtime, as in the paper's Table IV), plus recorded counters and
      latency histograms. With --request, reconstruct one served
      request's span tree — queue wait, search time, per-matcher phases —
      from the id in its X-Valentine-Request-Id header.

  valentine trace flame <trace.jsonl>
      Emit the trace's profiler samples as collapsed stacks
      (`thread;span;... count` lines, flamegraph-ready). Produce them by
      running `valentine run` or `valentine serve` with --profile-hz.

  valentine index build --out PATH [--csv-dir DIR] [--format v1|v2]
                        [--shards N] [--size tiny|small|paper]
                        [--per-source N] [--seed N] [--bands B] [--rows R]
                        [--threads T]
      Build a persistent discovery index. With --csv-dir, every *.csv
      under DIR is profiled and ingested; otherwise a synthetic corpus of
      fabricated unionable tables from the three bundled sources is
      indexed (N tables per source, default 6). --format v1 (default)
      writes a single VIDX file; v2 writes a sharded directory (--shards,
      default 4) that supports incremental add/remove/compact.

  valentine index add <index> --csv-dir DIR [--threads T]
      Append every *.csv under DIR to an existing index as a new
      generation, without rewriting earlier data. A v1 file is migrated
      to a v2 directory in place first.

  valentine index remove <index> --table NAME
      Tombstone the named table: searches stop returning it immediately,
      but its bytes stay on disk until the next compact. Migrates v1 in
      place like `add`.

  valentine index compact <index>
      Rewrite a v2 index as a single generation, dropping tombstoned
      tables and merging accumulated add generations. Byte-identical to
      a fresh `index build` of the surviving tables.

  valentine index search <index-file> --query <q.csv> [--k K]
                         [--mode unionable|joinable] [--column NAME]
                         [--method NAME | --no-rerank] [--cap N]
      Top-k related-table search against a built index. Mode `unionable`
      ranks whole tables; `joinable` ranks candidate join columns for the
      query column named by --column. --method picks the re-rank matcher
      (default: coma-instance); --no-rerank ranks by sketches alone.

  valentine index eval [--size tiny|small|paper] [--per-source N] [--k K]
                       [--seed N] [--method NAME | --no-rerank]
      Corpus-scale retrieval evaluation against fabricator ground truth:
      counterpart hit rate, precision@k, MRR, and matcher calls saved
      versus brute-force all-pairs matching.

  valentine index info <index>
      Summarise a built index: format (v1 file or v2 directory), tables,
      profiles, LSH layout, and — for v2 — generations, segments, and
      pending tombstones. Reports quarantined data when the load was
      degraded.

  valentine index verify [--deep] <index>
      Integrity-check a built index (fsck): validate the magic, version,
      and CRC32C checksum of every file — the single blob for v1, the
      MANIFEST plus every table catalog and segment for v2 — and print
      one verdict per file. --deep additionally re-parses every file and
      cross-checks catalogs against segments, catching structurally valid
      files that disagree with each other. Unreferenced files are listed
      as orphans but never fail the check. Exit code 1 when anything is
      corrupt. A corrupt generation can be dropped (and its space
      reclaimed) with `valentine index compact`.

  valentine serve <index-file> [--host H] [--port P] [--pool-threads T]
                  [--accept-threads T] [--cache N] [--deadline-ms MS]
                  [--header-timeout-ms MS] [--k K]
                  [--method NAME | --no-rerank] [--cap N] [--profile-hz HZ]
      Load the index once and answer concurrent discovery queries over
      HTTP until SIGINT/SIGTERM, then drain gracefully. Endpoints:
        GET  /search?kind=unionable|joinable&k=K[&table=NAME|&column=NAME]
                    [&method=NAME][&cap=N][&deadline_ms=MS]
        POST /search?kind=...       (body: the query table as CSV)
        GET  /metrics               (counters + p50/p90/p99 per endpoint;
                                     ?format=prometheus for exposition text)
        GET  /debug/exemplars       (slowest + errored request snapshots)
        GET  /healthz               (body `ok`, or `degraded` when corrupt
                                     data was quarantined at load)
        POST /admin/reload          (re-load the index file/directory and
                                     swap it in without dropping requests;
                                     the result cache is cleared; a failed
                                     load answers 503 `keeping current
                                     index` and the old index serves on)
      --port 0 (the default) binds an ephemeral port and prints it.
      Answers are cached in an LRU keyed by the query's sketch digest;
      requests that blow their deadline answer 504 with the sketch-only
      shortlist and are never cached. Every response carries an
      X-Valentine-Request-Id header; a valid client-sent id is adopted.
      Overload is shed, not queued: when the connection queue stays full
      past a brief retry, excess connections answer 503 with Retry-After
      (counter serve/sheds), and request heads that dawdle past
      --header-timeout-ms (default 2000) answer 408 (serve/slow_headers).
      Searches over a degraded index answer 200 with `degraded: true` and
      are never cached; repair with `index compact` + /admin/reload.
      With --trace, each finished request streams into the trace as a
      `request` line (inspect one with `trace report --request ID`) and
      the final metrics snapshot is flushed on shutdown. --profile-hz
      samples worker span stacks into the trace (needs --trace).

GLOBAL OPTIONS:
  --trace FILE
      Enable instrumentation and write a JSONL trace of spans, counters,
      and latency histograms for any command. `valentine run` additionally
      streams one record per experiment (with its phase tree) into the
      trace; `valentine serve` streams one `request` line per finished
      request. Render with `valentine trace report FILE`.
";

/// Builds a matcher from its CLI name.
fn matcher_by_name(name: &str) -> Result<Box<dyn Matcher>, String> {
    Ok(match name {
        "cupid" => Box::new(CupidMatcher::default_config()),
        "similarity-flooding" | "sf" => Box::new(SimilarityFloodingMatcher::new()),
        "coma-schema" => Box::new(ComaMatcher::new(ComaStrategy::Schema)),
        "coma-instance" | "coma" => Box::new(ComaMatcher::new(ComaStrategy::Instance)),
        "distribution" | "dist" => Box::new(DistributionMatcher::dist1()),
        "distribution-loose" => Box::new(DistributionMatcher::dist2()),
        "semprop" => Box::new(SemPropMatcher::default_config()),
        "embdi" => Box::new(EmbdiMatcher::small_config()),
        "jaccard-levenshtein" | "jl" => Box::new(JaccardLevenshteinMatcher::new(0.8)),
        "approx-overlap" | "lsh" => Box::new(ApproxOverlapMatcher::new()),
        other => {
            return Err(format!(
                "unknown method `{other}` (see `valentine methods`)"
            ))
        }
    })
}

/// Resolves a CLI method name to its [`MatcherKind`] (for the index
/// re-rank stage, which instantiates matchers itself).
fn kind_by_name(name: &str) -> Result<MatcherKind, String> {
    MatcherKind::from_cli_name(name)
        .ok_or_else(|| format!("unknown re-rank method `{name}` (see `valentine methods`)"))
}

fn size_by_name(name: &str) -> Result<SizeClass, String> {
    Ok(match name {
        "tiny" => SizeClass::Tiny,
        "small" => SizeClass::Small,
        "paper" => SizeClass::Paper,
        other => return Err(format!("unknown size `{other}`")),
    })
}

/// `valentine methods`
pub fn methods() {
    println!("{:<22} {:<16} match types", "name", "class");
    for kind in MatcherKind::ALL {
        let types: Vec<&str> = kind.match_types().iter().map(|t| t.label()).collect();
        let name = match kind {
            MatcherKind::Cupid => "cupid",
            MatcherKind::SimilarityFlooding => "similarity-flooding",
            MatcherKind::ComaSchema => "coma-schema",
            MatcherKind::ComaInstance => "coma-instance",
            MatcherKind::DistributionDist1 => "distribution",
            MatcherKind::DistributionDist2 => "distribution-loose",
            MatcherKind::SemProp => "semprop",
            MatcherKind::EmbDI => "embdi",
            MatcherKind::JaccardLevenshtein => "jaccard-levenshtein",
        };
        println!("{:<22} {:<16} {}", name, kind.class(), types.join(", "));
    }
    println!(
        "{:<22} {:<16} Value Overlap (LSH-approximate, extension)",
        "approx-overlap", "instance-based"
    );
}

fn load_table(path: &str) -> Result<Table, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_string();
    csv::parse(name, &text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

/// `valentine match`
pub fn match_files(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &["one-to-one"])?;
    let a = load_table(p.positional(0, "first CSV file")?)?;
    let b = load_table(p.positional(1, "second CSV file")?)?;
    let matcher = matcher_by_name(p.opt("method").unwrap_or("coma-instance"))?;
    let top: usize = p.opt_parse("top", 10)?;
    let threshold: f64 = p.opt_parse("threshold", 0.5)?;

    let ranked = matcher
        .match_tables(&a, &b)
        .map_err(|e| format!("matching failed: {e}"))?;

    if p.flag("one-to-one") {
        let mapping =
            extract_hungarian(&ranked, threshold).map_err(|e| format!("extraction failed: {e}"))?;
        println!("1-1 mapping ({} with score ≥ {threshold}):", mapping.len());
        for m in &mapping {
            println!("  {} -> {}  ({:.4})", m.source, m.target, m.score);
        }
    } else {
        println!(
            "top {} of {} ranked correspondences ({}):",
            top.min(ranked.len()),
            ranked.len(),
            matcher.name()
        );
        for (i, m) in ranked.top_k(top).iter().enumerate() {
            println!(
                "  {:>3}. {} <-> {}  ({:.4})",
                i + 1,
                m.source,
                m.target,
                m.score
            );
        }
    }
    Ok(())
}

/// `valentine fabricate`
pub fn fabricate(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let source_name = p.required("source")?;
    let scenario = p.required("scenario")?;
    let size = size_by_name(p.opt("size").unwrap_or("small"))?;
    let seed: u64 = p.opt_parse("seed", 42)?;
    let out_dir = p.opt("out").unwrap_or(".").to_string();

    let table = source_by_name(source_name, size, seed)?;
    let spec = match scenario {
        "unionable" => ScenarioSpec::unionable(0.5, SchemaNoise::Noisy, InstanceNoise::Verbatim),
        "view-unionable" => {
            ScenarioSpec::view_unionable(0.5, SchemaNoise::Noisy, InstanceNoise::Verbatim)
        }
        "joinable" => ScenarioSpec::joinable(0.3, false, SchemaNoise::Noisy),
        "semantically-joinable" => {
            ScenarioSpec::semantically_joinable(0.3, false, SchemaNoise::Noisy)
        }
        other => return Err(format!("unknown scenario `{other}`")),
    };
    let pair = fabricate_pair(&table, &spec, seed).map_err(|e| e.to_string())?;

    fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create `{out_dir}`: {e}"))?;
    let write = |name: &str, content: String| -> Result<(), String> {
        let path = format!("{out_dir}/{name}");
        fs::write(&path, content).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    write("source.csv", csv::serialize(&pair.source))?;
    write("target.csv", csv::serialize(&pair.target))?;
    let mut gt = String::from("source_column\ttarget_column\n");
    for (s, t) in &pair.ground_truth {
        gt.push_str(&format!("{s}\t{t}\n"));
    }
    write("ground_truth.tsv", gt)?;
    println!(
        "pair `{}`: {}x{} vs {}x{}, {} expected correspondences",
        pair.id,
        pair.source.width(),
        pair.source.height(),
        pair.target.width(),
        pair.target.height(),
        pair.ground_truth_size()
    );
    Ok(())
}

/// `valentine evaluate`
pub fn evaluate(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let a = load_table(p.positional(0, "first CSV file")?)?;
    let b = load_table(p.positional(1, "second CSV file")?)?;
    let truth_path = p.required("truth")?;
    let matcher = matcher_by_name(p.opt("method").unwrap_or("coma-instance"))?;

    let truth_text =
        fs::read_to_string(truth_path).map_err(|e| format!("cannot read `{truth_path}`: {e}"))?;
    let ground_truth: Vec<(String, String)> = truth_text
        .lines()
        .skip(1) // header
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split('\t');
            match (it.next(), it.next()) {
                (Some(s), Some(t)) => Ok((s.to_string(), t.to_string())),
                _ => Err(format!("malformed ground-truth line: `{l}`")),
            }
        })
        .collect::<Result<_, _>>()?;
    if ground_truth.is_empty() {
        return Err("ground truth is empty".into());
    }

    let start = std::time::Instant::now();
    let ranked = matcher
        .match_tables(&a, &b)
        .map_err(|e| format!("matching failed: {e}"))?;
    let elapsed = start.elapsed();

    let k = ground_truth.len();
    println!("method:            {}", matcher.name());
    println!("ground truth size: {k}");
    println!(
        "recall@GT:         {:.4}",
        recall_at_ground_truth(&ranked, &ground_truth)
    );
    println!(
        "MRR:               {:.4}",
        mean_reciprocal_rank(&ranked, &ground_truth)
    );
    println!(
        "MAP:               {:.4}",
        average_precision(&ranked, &ground_truth)
    );
    println!(
        "nDCG@{k}:          {:.4}",
        ndcg_at_k(&ranked, &ground_truth, k)
    );
    println!("runtime:           {:.3}s", elapsed.as_secs_f64());
    // the COMA-style near-tie view for human review
    let review = extract_threshold_delta(&ranked, 0.5, 0.05);
    println!(
        "candidates ≥0.5 within δ=0.05 of each source's best: {}",
        review.len()
    );
    Ok(())
}

fn source_by_name(name: &str, size: SizeClass, seed: u64) -> Result<Table, String> {
    Ok(match name {
        "tpcdi" => valentine_core::datasets::tpcdi::prospect(size, seed),
        "opendata" => valentine_core::datasets::opendata::open_data(size, seed),
        "chembl" => valentine_core::datasets::chembl::assays(size, seed),
        other => {
            return Err(format!(
                "unknown source `{other}` (tpcdi | opendata | chembl)"
            ))
        }
    })
}

/// Parses an optional `--<key> MILLIS` duration flag.
fn opt_millis(p: &args::Parsed, key: &str) -> Result<Option<std::time::Duration>, String> {
    match p.opt(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(|ms| Some(std::time::Duration::from_millis(ms)))
            .map_err(|_| format!("option --{key}: cannot parse `{raw}` as milliseconds")),
    }
}

/// `valentine run` — every method's default configuration over a
/// fabricated unionable and joinable pair, with an optional streamed
/// trace. With `--grid`, the full Table II parameter grids instead. Both
/// modes schedule (pair × method) tasks over [`Runner::run_grids`]'s worker
/// pool, which also hosts the resilience harness: per-task and per-run
/// deadlines, crash-safe checkpointing (`--checkpoint`), resume
/// (`--resume`), graceful timeout degradation (`--retry-on-timeout`), and
/// scripted fault injection (`--fault`).
///
/// Returns the process exit code: 0 on success, 1 when at least one
/// method's every run failed (a wholly failed method means the report's
/// comparison is meaningless for it, which CI must notice).
pub fn run_experiments(argv: &[String], trace: Option<&Path>) -> Result<i32, String> {
    let p = args::parse(argv, &["grid", "retry-on-timeout"])?;
    let size = size_by_name(p.opt("size").unwrap_or("small"))?;
    let seed: u64 = p.opt_parse("seed", 42)?;
    let base = source_by_name(p.opt("source").unwrap_or("tpcdi"), size, seed)?;

    let specs = [
        ScenarioSpec::unionable(0.5, SchemaNoise::Noisy, InstanceNoise::Verbatim),
        ScenarioSpec::joinable(0.3, false, SchemaNoise::Noisy),
    ];
    let pairs: Vec<DatasetPair> = specs
        .iter()
        .map(|spec| fabricate_pair(&base, spec, seed).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    // Resume: rebuild the completed-cell set and carry over the error-free
    // records; errored cells (e.g. deadline casualties of a dying run) are
    // re-executed.
    let resume_path = p.opt("resume").map(Path::new);
    let (carried, completed) = match resume_path {
        Some(path) => {
            let ck = checkpoint::load(path)?;
            let torn = if ck.torn_tail {
                ", torn tail skipped"
            } else {
                ""
            };
            println!(
                "resuming from {}: {} completed cell(s), {} malformed line(s){torn}",
                path.display(),
                ck.completed().len(),
                ck.malformed,
            );
            (ck.clean_records(), ck.completed())
        }
        None => (Vec::new(), CompletedSet::default()),
    };

    // Checkpoint: append when continuing the same journal, create (and
    // re-seed with the carried records) otherwise.
    let checkpoint_path = p.opt("checkpoint").map(Path::new);
    let mut ck_writer = match checkpoint_path {
        Some(path) if resume_path == Some(path) => Some(
            checkpoint::CheckpointWriter::append_to(path)
                .map_err(|e| format!("cannot append to checkpoint `{}`: {e}", path.display()))?,
        ),
        Some(path) => {
            let mut w = checkpoint::CheckpointWriter::create(path)
                .map_err(|e| format!("cannot write checkpoint `{}`: {e}", path.display()))?;
            for rec in &carried {
                w.append(rec)
                    .map_err(|e| format!("cannot write checkpoint record: {e}"))?;
            }
            Some(w)
        }
        None => None,
    };

    if trace.is_some() {
        valentine_core::obs::set_enabled(true);
    }
    let mut sink = match trace {
        Some(path) => Some(
            TraceSink::create(path)
                .map_err(|e| format!("cannot write trace `{}`: {e}", path.display()))?,
        ),
        None => None,
    };

    let profile_hz: u32 = p.opt_parse("profile-hz", 0u32)?;
    if profile_hz > 0 {
        if trace.is_none() {
            return Err(
                "--profile-hz needs --trace: profile samples are written to the trace".to_string(),
            );
        }
        valentine_core::obs::profiler::start(profile_hz)?;
        println!("profiler sampling worker span stacks at {profile_hz} Hz");
    }

    let grid_mode = p.flag("grid");
    let config = RunnerConfig {
        methods: MatcherKind::ALL.to_vec(),
        scale: match size {
            SizeClass::Paper => GridScale::Paper,
            _ => GridScale::Small,
        },
        // The default-config mode is serial by default (matching its
        // pre-scheduler behaviour); the grid fans out over all cores.
        threads: p.opt_parse(
            "threads",
            if grid_mode {
                std::thread::available_parallelism().map_or(4usize, |n| n.get())
            } else {
                1
            },
        )?,
        task_deadline: opt_millis(&p, "task-deadline")?,
        run_deadline: opt_millis(&p, "run-deadline")?,
        retry_on_timeout: p.flag("retry-on-timeout"),
    };

    // Both modes run through the same grid scheduler; the default mode's
    // "grid" is each method's single default configuration.
    let mut grids: Vec<(MatcherKind, Vec<Box<dyn Matcher>>)> = if grid_mode {
        valentine_core::method_grids(&config.methods, config.scale)
    } else {
        config
            .methods
            .iter()
            .map(|&kind| (kind, vec![kind.instantiate()]))
            .collect()
    };

    if let Some(spec) = p.opt("fault") {
        let plan = FaultPlan::parse(spec)?;
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for (_, grid) in &mut grids {
            let inner = std::mem::take(grid);
            *grid = FaultyMatcher::wrap_grid(inner, &plan, &calls);
        }
        println!("fault injection armed: {spec}");
    }

    // Stream every finished batch into the checkpoint (fsync'd) and the
    // trace, so progress survives a crash mid-run.
    let mut stream_error: Option<String> = None;
    let runner = Runner::run_grids(&pairs, &grids, &config, &completed, |batch| {
        for rec in batch {
            if let Some(w) = &mut ck_writer {
                if let Err(e) = w.append(rec) {
                    stream_error.get_or_insert(format!("cannot write checkpoint record: {e}"));
                }
            }
            if let Some(s) = &mut sink {
                if let Err(e) = s.record(rec) {
                    stream_error.get_or_insert(format!("cannot write trace record: {e}"));
                }
            }
        }
    });
    if let Some(e) = stream_error {
        return Err(e);
    }
    if let Some(w) = ck_writer {
        w.finish()
            .map_err(|e| format!("cannot finish checkpoint: {e}"))?;
    }

    // Merge the carried records back in for reporting; the trace gets them
    // too so a resumed trace is as complete as an uninterrupted one.
    if let Some(s) = &mut sink {
        for rec in &carried {
            s.record(rec)
                .map_err(|e| format!("cannot write trace record: {e}"))?;
        }
    }
    let new_runs = runner.len();
    let mut records = runner.records().to_vec();
    records.extend(carried);
    let runner = Runner::from_records(records);

    if grid_mode {
        let workers: std::collections::BTreeSet<usize> =
            runner.records().iter().map(|r| r.worker).collect();
        println!(
            "grid: {} (pair × method) tasks over {} worker(s)",
            pairs.len() * config.methods.len(),
            workers.len()
        );
    }
    if resume_path.is_some() {
        println!(
            "{} run(s) executed now, {} carried over from the checkpoint",
            new_runs,
            runner.len() - new_runs
        );
    }

    println!(
        "{} runs over {} pairs ({} methods):",
        runner.len(),
        pairs.len(),
        MatcherKind::ALL.len()
    );
    println!(
        "{:<24} {:>5} {:>7} {:>12} {:>10}",
        "method", "runs", "failed", "mean recall", "runtime"
    );
    for kind in MatcherKind::ALL {
        let of_kind: Vec<&ExperimentRecord> = runner
            .records()
            .iter()
            .filter(|r| r.method == kind)
            .collect();
        let failed = of_kind.iter().filter(|r| r.error.is_some()).count();
        let recall: f64 =
            of_kind.iter().map(|r| r.recall).sum::<f64>() / of_kind.len().max(1) as f64;
        let runtime: std::time::Duration = of_kind.iter().map(|r| r.runtime).sum();
        println!(
            "{:<24} {:>5} {:>7} {:>12.4} {:>10}",
            kind.label(),
            of_kind.len(),
            failed,
            recall,
            valentine_core::obs::report::fmt_ns(runtime.as_nanos() as u64),
        );
    }

    if let Some(path) = p.opt("summary") {
        let summary = valentine_core::reports::render_run_summary(&runner, &MatcherKind::ALL);
        fs::write(path, summary).map_err(|e| format!("cannot write summary `{path}`: {e}"))?;
        println!("summary written to {path}");
    }

    // Stop sampling before the trace closes so every folded stack lands in
    // the file ahead of the final snapshot.
    if profile_hz > 0 {
        let folded = valentine_core::obs::profiler::stop();
        if let Some(s) = &mut sink {
            for (stack, count) in &folded {
                s.profile(stack, *count)
                    .map_err(|e| format!("cannot write trace profile: {e}"))?;
            }
        }
        println!(
            "profiler captured {} distinct stack(s); render with: valentine trace flame",
            folded.len()
        );
    }

    if let Some(sink) = sink {
        sink.finish()
            .map_err(|e| format!("cannot finish trace: {e}"))?;
        let path = trace.expect("sink implies path");
        println!("\ntrace written to {}", path.display());
        println!("render it with: valentine trace report {}", path.display());
    }

    // A method whose every run failed produces a meaningless comparison —
    // exit nonzero so harnesses notice instead of reading a table of zeros.
    let fully_failed: Vec<&str> = MatcherKind::ALL
        .iter()
        .filter(|&&kind| {
            let runs = runner.records().iter().filter(|r| r.method == kind).count();
            runs > 0 && runner.errors_of(kind) == runs
        })
        .map(|k| k.label())
        .collect();
    if !fully_failed.is_empty() {
        print!("{}", valentine_core::reports::render_error_summary(&runner));
        eprintln!(
            "valentine: every run failed for: {} — reporting exit code 1",
            fully_failed.join(", ")
        );
        return Ok(1);
    }
    Ok(0)
}

/// `valentine trace <report|flame>`
pub fn trace(argv: &[String]) -> Result<(), String> {
    let read_trace = |p: &args::Parsed| -> Result<valentine_core::trace::TraceData, String> {
        let path = p.positional(0, "trace file")?;
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        Ok(parse_trace(&text))
    };
    match argv.first().map(String::as_str) {
        Some("report") => {
            let p = args::parse(&argv[1..], &[])?;
            let data = read_trace(&p)?;
            match p.opt("request") {
                Some(id) => print!("{}", render_request_report(&data, id)?),
                None => print!("{}", render_trace_report(&data)),
            }
            Ok(())
        }
        Some("flame") => {
            let p = args::parse(&argv[1..], &[])?;
            print!("{}", render_flame(&read_trace(&p)?)?);
            Ok(())
        }
        other => Err(format!(
            "unknown trace subcommand `{}` (report | flame)",
            other.unwrap_or("")
        )),
    }
}

/// Writes a snapshot-only trace (no per-experiment records) — what traced
/// commands other than `run` produce.
pub fn write_snapshot_trace(path: &Path) -> Result<(), String> {
    let sink = TraceSink::create(path)
        .map_err(|e| format!("cannot write trace `{}`: {e}", path.display()))?;
    sink.finish()
        .map_err(|e| format!("cannot finish trace: {e}"))?;
    println!("trace written to {}", path.display());
    Ok(())
}

/// `valentine index <build|add|remove|compact|search|eval|info|verify>`
///
/// Returns the process exit code: `verify` exits 1 when any file fails
/// its integrity check; every other subcommand exits 0 on success.
pub fn index(argv: &[String]) -> Result<i32, String> {
    match argv.first().map(String::as_str) {
        Some("build") => index_build(&argv[1..]),
        Some("add") => index_add(&argv[1..]),
        Some("remove") => index_remove(&argv[1..]),
        Some("compact") => index_compact(&argv[1..]),
        Some("search") => index_search(&argv[1..]),
        Some("eval") => index_eval(&argv[1..]),
        Some("info") => index_info(&argv[1..]),
        Some("verify") => return index_verify(&argv[1..]),
        other => Err(format!(
            "unknown index subcommand `{}` \
             (build | add | remove | compact | search | eval | info | verify)",
            other.unwrap_or("")
        )),
    }?;
    Ok(0)
}

fn index_config_from(p: &args::Parsed) -> Result<valentine_core::index::IndexConfig, String> {
    let defaults = valentine_core::index::IndexConfig::default();
    Ok(valentine_core::index::IndexConfig {
        bands: p.opt_parse("bands", defaults.bands)?,
        rows: p.opt_parse("rows", defaults.rows)?,
        seed: p.opt_parse("seed", defaults.seed)?,
    })
}

fn search_options_from(p: &args::Parsed) -> Result<SearchOptions, String> {
    let mut opts = SearchOptions::default();
    if p.flag("no-rerank") {
        opts.rerank = None;
    } else if let Some(name) = p.opt("method") {
        opts.rerank = Some(kind_by_name(name)?);
    }
    opts.candidate_cap = p.opt_parse("cap", opts.candidate_cap)?;
    opts.threads = p.opt_parse("threads", opts.threads)?;
    Ok(opts)
}

/// Collects every `*.csv` under `root`, recursively, in sorted path order.
fn collect_csv_files(
    root: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> Result<(), String> {
    let entries =
        fs::read_dir(root).map_err(|e| format!("cannot read `{}`: {e}", root.display()))?;
    let mut paths: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_csv_files(&path, out)?;
        } else if path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
        {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads every `*.csv` under `dir` as an ingest batch tagged `csv:<dir>`.
fn csv_batch(dir: &str) -> Result<Vec<(String, Table)>, String> {
    let mut files = Vec::new();
    collect_csv_files(std::path::Path::new(dir), &mut files)?;
    if files.is_empty() {
        return Err(format!("no *.csv files under `{dir}`"));
    }
    files
        .iter()
        .map(|f| Ok((format!("csv:{dir}"), load_table(&f.to_string_lossy())?)))
        .collect()
}

fn index_build(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let out_path = p.required("out")?.to_string();
    let threads: usize = p.opt_parse(
        "threads",
        std::thread::available_parallelism().map_or(4usize, |n| n.get()),
    )?;
    let format = p.opt("format").unwrap_or("v1");
    if format != "v1" && format != "v2" {
        return Err(format!("unknown index format `{format}` (v1 | v2)"));
    }
    let shards: u32 = p.opt_parse("shards", valentine_core::index::DEFAULT_SHARDS)?;
    let mut idx = Index::new(index_config_from(&p)?);

    if let Some(dir) = p.opt("csv-dir") {
        idx.ingest_batch(csv_batch(dir)?, threads);
    } else {
        let config = DiscoveryEvalConfig {
            size: size_by_name(p.opt("size").unwrap_or("tiny"))?,
            per_source: p.opt_parse("per-source", 6usize)?,
            seed: p.opt_parse("seed", 0x7a1eu64)?,
            index: *idx.config(),
            threads,
            ..DiscoveryEvalConfig::default()
        };
        let (built, _) = valentine_core::discovery::build_discovery_corpus(&config);
        idx = built;
    }

    if format == "v2" {
        valentine_core::index::v2::save_v2(&idx, std::path::Path::new(&out_path), shards)
            .map_err(|e| e.to_string())?;
    } else {
        idx.save(std::path::Path::new(&out_path))
            .map_err(|e| e.to_string())?;
    }
    println!(
        "indexed {} tables ({} column profiles, {}×{} LSH bands, {format}) -> {out_path}",
        idx.len(),
        idx.num_profiles(),
        idx.config().bands,
        idx.config().rows,
    );
    Ok(())
}

/// Ensures `path` is a v2 index directory, migrating a v1 file in place
/// first — how `add`/`remove`/`compact` accept either format.
fn ensure_v2(path: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if valentine_core::index::v2::is_v2_dir(p) {
        return Ok(());
    }
    if p.is_file() {
        valentine_core::index::v2::migrate_v1_file(p, valentine_core::index::DEFAULT_SHARDS)
            .map_err(|e| format!("cannot migrate `{path}` to v2: {e}"))?;
        println!("migrated v1 index `{path}` to a v2 directory in place");
        return Ok(());
    }
    Err(format!("`{path}` is not a VIDX index"))
}

fn index_add(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let path = p.positional(0, "index path")?;
    let dir = p.required("csv-dir")?;
    let threads: usize = p.opt_parse(
        "threads",
        std::thread::available_parallelism().map_or(4usize, |n| n.get()),
    )?;
    ensure_v2(path)?;
    let batch = csv_batch(dir)?;
    let mut writer = valentine_core::index::IndexWriter::append(std::path::Path::new(path))
        .map_err(|e| format!("cannot open `{path}` for append: {e}"))?;
    let ids = writer
        .add_batch(batch, threads)
        .map_err(|e| e.to_string())?;
    writer.finish().map_err(|e| e.to_string())?;
    println!("added {} tables from `{dir}` -> {path}", ids.len());
    Ok(())
}

fn index_remove(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let path = p.positional(0, "index path")?;
    let table = p.required("table")?;
    ensure_v2(path)?;
    match valentine_core::index::v2::remove_table(std::path::Path::new(path), table)
        .map_err(|e| e.to_string())?
    {
        Some(id) => {
            println!(
                "tombstoned table `{table}` (id {id}) in {path}; \
                 run `valentine index compact` to reclaim space"
            );
            Ok(())
        }
        None => Err(format!("no live table named `{table}` in `{path}`")),
    }
}

fn index_compact(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let path = p.positional(0, "index path")?;
    ensure_v2(path)?;
    let dir = std::path::Path::new(path);
    let before = valentine_core::index::v2::dir_info(dir).map_err(|e| e.to_string())?;
    valentine_core::index::v2::compact(dir).map_err(|e| e.to_string())?;
    let after = valentine_core::index::v2::dir_info(dir).map_err(|e| e.to_string())?;
    println!(
        "compacted {path}: {} generation(s), {} tombstone(s) -> {} generation(s), {} live tables",
        before.generations, before.tombstones, after.generations, after.live_tables,
    );
    Ok(())
}

/// Deserialises a VIDX file once into a shareable [`LoadedIndex`] handle.
fn load_index(path: &str) -> Result<LoadedIndex, String> {
    LoadedIndex::load(std::path::Path::new(path))
        .map_err(|e| format!("cannot load index `{path}`: {e}"))
}

fn index_search(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &["no-rerank"])?;
    let idx = load_index(p.positional(0, "index file")?)?;
    let query = load_table(p.required("query")?)?;
    let k: usize = p.opt_parse("k", 5)?;
    let opts = search_options_from(&p)?;

    let outcome = match p.opt("mode").unwrap_or("unionable") {
        "unionable" => idx.top_k_unionable(&query, k, &opts),
        "joinable" => {
            let column_name = p.required("column")?;
            let column = query
                .column(column_name)
                .ok_or_else(|| format!("query has no column `{column_name}`"))?;
            idx.top_k_joinable(column, k, &opts)
        }
        other => return Err(format!("unknown mode `{other}` (unionable | joinable)")),
    };

    println!(
        "top {} of {} indexed tables:",
        outcome.results.len(),
        idx.len()
    );
    for (i, r) in outcome.results.iter().enumerate() {
        let column = r
            .column
            .as_deref()
            .map(|c| format!(" [{c}]"))
            .unwrap_or_default();
        println!(
            "  {:>3}. {}{column}  score {:.4}  (sketch {:.4}, source {})",
            i + 1,
            r.table_name,
            r.score,
            r.sketch_score,
            r.source
        );
    }
    let s = outcome.stats;
    println!(
        "stats: {} LSH candidates, {} matcher calls ({} failed) vs {} brute-force",
        s.lsh_candidates,
        s.matcher_calls,
        s.matcher_errors,
        idx.len()
    );
    if s.degraded {
        eprintln!(
            "warning: index is degraded — corrupt data was quarantined at load, \
             so the ranking covers the surviving tables only \
             (run `valentine index verify` for details)"
        );
    }
    Ok(())
}

fn index_eval(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &["no-rerank"])?;
    let config = DiscoveryEvalConfig {
        size: size_by_name(p.opt("size").unwrap_or("tiny"))?,
        per_source: p.opt_parse("per-source", 6usize)?,
        seed: p.opt_parse("seed", 0x7a1eu64)?,
        k: p.opt_parse("k", 5usize)?,
        index: index_config_from(&p)?,
        search: search_options_from(&p)?,
        threads: p.opt_parse(
            "threads",
            std::thread::available_parallelism().map_or(4usize, |n| n.get()),
        )?,
    };
    // Build the corpus once and evaluate through the shared LoadedIndex
    // path — the same handle `valentine serve` holds.
    let (index, queries) = valentine_core::discovery::build_discovery_corpus(&config);
    let eval = evaluate_queries(&LoadedIndex::from(index), &queries, &config);
    print!("{}", render_discovery_report(&eval));
    Ok(())
}

fn index_info(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv, &[])?;
    let path = p.positional(0, "index file")?;
    let idx = load_index(path)?;
    let config = idx.config();
    if valentine_core::index::v2::is_v2_dir(std::path::Path::new(path)) {
        let info =
            valentine_core::index::v2::dir_info(std::path::Path::new(path)).map_err(|e| {
                format!("cannot read v2 manifest `{path}`: {e}") // loaded fine, so unlikely
            })?;
        println!(
            "format:        v2 ({} shards, {} generation(s), {} segment(s), {} tombstone(s))",
            info.shards, info.generations, info.segments, info.tombstones,
        );
    } else {
        println!("format:        v1 (single file)");
    }
    println!("tables:        {}", idx.len());
    println!("profiles:      {}", idx.num_profiles());
    println!(
        "lsh layout:    {} bands x {} rows (signature k = {}, threshold ~{:.3})",
        config.bands,
        config.rows,
        config.signature_len(),
        (1.0 / config.bands as f64).powf(1.0 / config.rows as f64)
    );
    println!("seed:          {:#x}", config.seed);
    if idx.is_degraded() {
        let q = idx.quarantine();
        println!(
            "degraded:      yes — {} generation(s) / {} segment(s) quarantined at load",
            q.generations, q.segments
        );
        for reason in &q.reasons {
            println!("  {reason}");
        }
    }
    let mut by_source: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for t in idx.tables() {
        *by_source.entry(t.source.as_str()).or_insert(0) += 1;
    }
    for (source, n) in by_source {
        println!("  {source}: {n} tables");
    }
    Ok(())
}

/// `valentine index verify [--deep] <index>` — the index fsck. Prints one
/// verdict per file and exits 1 when anything is corrupt.
fn index_verify(argv: &[String]) -> Result<i32, String> {
    let p = args::parse(argv, &["deep"])?;
    let path = p.positional(0, "index path")?;
    let report =
        valentine_core::index::verify::verify_path(std::path::Path::new(path), p.flag("deep"))
            .map_err(|e| format!("cannot verify `{path}`: {e}"))?;
    for v in &report.verdicts {
        if v.ok {
            println!("ok       {}", v.file);
        } else {
            println!("CORRUPT  {}: {}", v.file, v.detail);
        }
    }
    for orphan in &report.orphans {
        println!("orphan   {orphan} (not referenced by the manifest)");
    }
    let corrupt = report.corrupt_files();
    if corrupt.is_empty() {
        println!(
            "{path}: verified {} file(s), all clean",
            report.verdicts.len()
        );
        Ok(0)
    } else {
        println!(
            "{path}: {} of {} file(s) corrupt: {}",
            corrupt.len(),
            report.verdicts.len(),
            corrupt.join(", ")
        );
        Ok(1)
    }
}

/// One shared trace file behind a mutex: the server's request log clones
/// it and appends one `request` line per finished request while the main
/// thread keeps its own handle for the post-drain snapshot flush.
struct SharedTraceFile(std::sync::Arc<std::sync::Mutex<fs::File>>);

impl std::io::Write for SharedTraceFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("trace file lock").write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("trace file lock").flush()
    }
}

/// `valentine serve` — load an index once and answer concurrent discovery
/// queries over HTTP until SIGINT/SIGTERM requests a graceful drain.
///
/// With `--trace`, the file is opened *before* the server starts so each
/// finished request streams into it as a `request` line; the profiler's
/// folded stacks and the final metrics snapshot are appended after the
/// drain, when every worker has handed its spans back.
pub fn serve(argv: &[String], trace: Option<&Path>) -> Result<i32, String> {
    use std::io::Write as _;

    let p = args::parse(argv, &["no-rerank"])?;
    let index_path = p.positional(0, "index file")?.to_string();
    let index = load_index(&index_path)?;
    let profile_hz: u32 = p.opt_parse("profile-hz", 0u32)?;
    if profile_hz > 0 && trace.is_none() {
        return Err(
            "--profile-hz needs --trace: profile samples are written to the trace".to_string(),
        );
    }

    let defaults = valentine_serve::ServeConfig::default();
    let mut config = valentine_serve::ServeConfig {
        host: p.opt("host").unwrap_or("127.0.0.1").to_string(),
        port: p.opt_parse("port", 0u16)?,
        pool_threads: p.opt_parse("pool-threads", defaults.pool_threads)?,
        accept_threads: p.opt_parse("accept-threads", defaults.accept_threads)?,
        cache_capacity: p.opt_parse("cache", defaults.cache_capacity)?,
        default_deadline: opt_millis(&p, "deadline-ms")?.or(defaults.default_deadline),
        header_read_timeout: opt_millis(&p, "header-timeout-ms")?
            .unwrap_or(defaults.header_read_timeout),
        default_k: p.opt_parse("k", defaults.default_k)?,
        candidate_cap: p.opt_parse("cap", defaults.candidate_cap)?,
        index_path: Some(std::path::PathBuf::from(&index_path)),
        ..defaults
    };
    if p.flag("no-rerank") {
        config.default_rerank = None;
    } else if let Some(name) = p.opt("method") {
        config.default_rerank = Some(kind_by_name(name)?);
    }

    // Open the trace before the server starts: the meta line goes first,
    // then request lines stream in live via the shared request log.
    let shared_trace = match trace {
        Some(path) => {
            let mut file = fs::File::create(path)
                .map_err(|e| format!("cannot write trace `{}`: {e}", path.display()))?;
            writeln!(file, "{}", valentine_core::obs::jsonl::meta_line())
                .map_err(|e| format!("cannot write trace `{}`: {e}", path.display()))?;
            Some(std::sync::Arc::new(std::sync::Mutex::new(file)))
        }
        None => None,
    };
    let request_log: Option<Box<dyn std::io::Write + Send>> = shared_trace.as_ref().map(|file| {
        Box::new(SharedTraceFile(std::sync::Arc::clone(file))) as Box<dyn std::io::Write + Send>
    });

    if profile_hz > 0 {
        valentine_core::obs::profiler::start(profile_hz)?;
        println!("profiler sampling worker span stacks at {profile_hz} Hz");
    }

    valentine_serve::shutdown::install();
    let handle = valentine_serve::ServerHandle::start_with_log(index, config, request_log)
        .map_err(|e| format!("cannot start server: {e}"))?;
    println!("serving on http://{}", handle.addr());
    println!(
        "endpoints: /search /metrics /debug/exemplars /healthz /admin/reload — stop with SIGINT/SIGTERM"
    );

    while !valentine_serve::shutdown::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutdown requested; draining in-flight requests");
    let snapshot = handle.shutdown();
    let folded = if profile_hz > 0 {
        valentine_core::obs::profiler::stop()
    } else {
        Default::default()
    };
    println!(
        "served {} request(s): {} cache hit(s), {} miss(es), {} deadline-exceeded",
        snapshot.counter(valentine_serve::metrics::REQUESTS),
        snapshot.counter(valentine_serve::metrics::CACHE_HITS),
        snapshot.counter(valentine_serve::metrics::CACHE_MISSES),
        snapshot.counter(valentine_serve::metrics::DEADLINE_EXCEEDED),
    );
    if let (Some(path), Some(file)) = (trace, shared_trace) {
        let mut file = file.lock().expect("trace file lock");
        let finish = |e: std::io::Error| format!("cannot finish trace: {e}");
        for (stack, count) in &folded {
            writeln!(
                file,
                "{}",
                valentine_core::obs::jsonl::profile_line(stack, *count)
            )
            .map_err(finish)?;
        }
        valentine_core::obs::jsonl::write_snapshot(&mut *file, &snapshot).map_err(finish)?;
        file.flush().map_err(finish)?;
        println!("trace written to {}", path.display());
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("valentine_cli_test_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn matcher_names_resolve() {
        for name in [
            "cupid",
            "similarity-flooding",
            "sf",
            "coma-schema",
            "coma-instance",
            "coma",
            "distribution",
            "dist",
            "distribution-loose",
            "semprop",
            "embdi",
            "jaccard-levenshtein",
            "jl",
            "approx-overlap",
            "lsh",
        ] {
            assert!(matcher_by_name(name).is_ok(), "{name}");
        }
        assert!(matcher_by_name("quantum").is_err());
    }

    #[test]
    fn fabricate_then_evaluate_roundtrip() {
        let dir = temp_dir("roundtrip");
        let out = dir.to_str().unwrap();
        fabricate(&argv(&[
            "--source",
            "tpcdi",
            "--scenario",
            "joinable",
            "--size",
            "tiny",
            "--seed",
            "4",
            "--out",
            out,
        ]))
        .expect("fabricate works");
        for f in ["source.csv", "target.csv", "ground_truth.tsv"] {
            assert!(dir.join(f).exists(), "{f}");
        }
        let src = format!("{out}/source.csv");
        let tgt = format!("{out}/target.csv");
        let truth = format!("{out}/ground_truth.tsv");
        evaluate(&argv(&[
            &src,
            &tgt,
            "--truth",
            &truth,
            "--method",
            "coma-instance",
        ]))
        .expect("evaluate works");
        match_files(&argv(&[&src, &tgt, "--method", "jl", "--top", "3"])).expect("match works");
        match_files(&argv(&[&src, &tgt, "--one-to-one", "--threshold", "0.6"]))
            .expect("one-to-one works");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fabricate_rejects_unknown_inputs() {
        assert!(fabricate(&argv(&["--source", "ghost", "--scenario", "joinable"])).is_err());
        assert!(fabricate(&argv(&["--source", "tpcdi", "--scenario", "ghost"])).is_err());
        assert!(
            fabricate(&argv(&["--source", "tpcdi"])).is_err(),
            "scenario required"
        );
    }

    #[test]
    fn evaluate_rejects_bad_truth() {
        let dir = temp_dir("badtruth");
        let csv_path = dir.join("t.csv");
        fs::write(&csv_path, "a,b\n1,2\n").unwrap();
        let empty_truth = dir.join("gt.tsv");
        fs::write(&empty_truth, "source_column\ttarget_column\n").unwrap();
        let c = csv_path.to_str().unwrap();
        let g = empty_truth.to_str().unwrap();
        assert!(
            evaluate(&argv(&[c, c, "--truth", g])).is_err(),
            "empty truth rejected"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn match_files_reports_missing_inputs() {
        assert!(match_files(&argv(&["/nonexistent/a.csv", "/nonexistent/b.csv"])).is_err());
        assert!(match_files(&argv(&[])).is_err());
    }

    #[test]
    fn index_build_search_info_roundtrip() {
        let dir = temp_dir("index_roundtrip");
        let idx_path = dir.join("corpus.vidx");
        let idx = idx_path.to_str().unwrap();
        index(&argv(&[
            "build",
            "--out",
            idx,
            "--size",
            "tiny",
            "--per-source",
            "3",
            "--seed",
            "9",
        ]))
        .expect("index build works");
        assert!(idx_path.exists());
        index(&argv(&["info", idx])).expect("index info works");

        // Fabricate a query that shares a base table with the corpus and
        // search for it, both re-ranked and sketch-only.
        let out = dir.to_str().unwrap();
        fabricate(&argv(&[
            "--source",
            "tpcdi",
            "--scenario",
            "unionable",
            "--size",
            "tiny",
            "--seed",
            "9",
            "--out",
            out,
        ]))
        .expect("fabricate works");
        let query = format!("{out}/source.csv");
        index(&argv(&[
            "search", idx, "--query", &query, "--k", "3", "--method", "jl",
        ]))
        .expect("unionable search works");
        index(&argv(&["search", idx, "--query", &query, "--no-rerank"]))
            .expect("sketch-only search works");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_build_from_csv_dir() {
        let dir = temp_dir("index_csvdir");
        let csv_dir = dir.join("tables");
        fs::create_dir_all(csv_dir.join("nested")).unwrap();
        fs::write(csv_dir.join("a.csv"), "id,name\n1,ada\n2,grace\n").unwrap();
        fs::write(csv_dir.join("nested/b.csv"), "id,city\n1,oslo\n2,turin\n").unwrap();
        fs::write(csv_dir.join("notes.txt"), "not a table").unwrap();
        let idx_path = dir.join("dir.vidx");
        let idx = idx_path.to_str().unwrap();
        index(&argv(&[
            "build",
            "--out",
            idx,
            "--csv-dir",
            csv_dir.to_str().unwrap(),
        ]))
        .expect("index build from csv dir works");
        index(&argv(&["info", idx])).expect("info works");

        // Joinable search on the id column of one of the ingested tables.
        let query = csv_dir.join("a.csv");
        index(&argv(&[
            "search",
            idx,
            "--query",
            query.to_str().unwrap(),
            "--mode",
            "joinable",
            "--column",
            "id",
            "--no-rerank",
        ]))
        .expect("joinable search works");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_v2_lifecycle_add_remove_compact() {
        let dir = temp_dir("index_v2_lifecycle");
        let first = dir.join("first");
        fs::create_dir_all(&first).unwrap();
        fs::write(first.join("a.csv"), "id,name\n1,ada\n2,grace\n3,edsger\n").unwrap();
        fs::write(first.join("b.csv"), "id,city\n1,oslo\n2,turin\n3,york\n").unwrap();
        let second = dir.join("second");
        fs::create_dir_all(&second).unwrap();
        fs::write(second.join("c.csv"), "id,lang\n1,rust\n2,ada\n3,c\n").unwrap();

        let idx_path = dir.join("corpus.vidx");
        let idx = idx_path.to_str().unwrap();
        index(&argv(&[
            "build",
            "--out",
            idx,
            "--format",
            "v2",
            "--shards",
            "2",
            "--csv-dir",
            first.to_str().unwrap(),
        ]))
        .expect("v2 build works");
        assert!(idx_path.is_dir(), "v2 index is a directory");
        index(&argv(&["info", idx])).expect("info reads a v2 directory");

        index(&argv(&["add", idx, "--csv-dir", second.to_str().unwrap()]))
            .expect("incremental add works");
        let query = first.join("a.csv");
        let q = query.to_str().unwrap();
        index(&argv(&["search", idx, "--query", q, "--no-rerank"])).expect("search after add");

        index(&argv(&["remove", idx, "--table", "b"])).expect("remove works");
        assert!(
            index(&argv(&["remove", idx, "--table", "b"])).is_err(),
            "double remove is an error"
        );
        assert!(
            index(&argv(&["remove", idx, "--table", "ghost"])).is_err(),
            "unknown table is an error"
        );
        index(&argv(&["compact", idx])).expect("compact works");
        index(&argv(&["search", idx, "--query", q, "--no-rerank"])).expect("search after compact");
        index(&argv(&["info", idx])).expect("info after compact");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_add_migrates_a_v1_file_in_place() {
        let dir = temp_dir("index_v1_migrate");
        let tables = dir.join("tables");
        fs::create_dir_all(&tables).unwrap();
        fs::write(tables.join("a.csv"), "id,name\n1,ada\n2,grace\n").unwrap();
        let more = dir.join("more");
        fs::create_dir_all(&more).unwrap();
        fs::write(more.join("b.csv"), "id,city\n1,oslo\n2,turin\n").unwrap();

        let idx_path = dir.join("old.vidx");
        let idx = idx_path.to_str().unwrap();
        index(&argv(&[
            "build",
            "--out",
            idx,
            "--csv-dir",
            tables.to_str().unwrap(),
        ]))
        .expect("v1 build works");
        assert!(idx_path.is_file(), "v1 index is a single file");

        index(&argv(&["add", idx, "--csv-dir", more.to_str().unwrap()]))
            .expect("add migrates v1 then appends");
        assert!(idx_path.is_dir(), "migration replaced the file in place");
        let query = tables.join("a.csv");
        index(&argv(&[
            "search",
            idx,
            "--query",
            query.to_str().unwrap(),
            "--no-rerank",
        ]))
        .expect("search after migration");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_eval_runs_sketch_only() {
        index(&argv(&[
            "eval",
            "--size",
            "tiny",
            "--per-source",
            "2",
            "--k",
            "3",
            "--no-rerank",
        ]))
        .expect("index eval works");
    }

    /// One request, read to EOF (the server closes). `None` on any I/O
    /// failure so the caller can poll for server readiness.
    fn http_get(addr: &str, target: &str) -> Option<String> {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).ok()?;
        write!(
            s,
            "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .ok()?;
        let mut out = String::new();
        s.read_to_string(&mut out).ok()?;
        Some(out)
    }

    /// First value of `name` in a raw HTTP response's header block.
    fn response_header(response: &str, name: &str) -> Option<String> {
        response
            .lines()
            .take_while(|l| !l.is_empty())
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
            })
    }

    #[test]
    fn serve_rejects_bad_inputs() {
        let dir = temp_dir("serve_bad");
        let idx_path = dir.join("i.vidx");
        let idx = idx_path.to_str().unwrap();
        index(&argv(&["build", "--out", idx, "--per-source", "1"])).unwrap();
        assert!(serve(&argv(&[]), None).is_err(), "index file required");
        assert!(serve(&argv(&["/nonexistent.vidx"]), None).is_err());
        assert!(serve(&argv(&[idx, "--method", "ghost"]), None).is_err());
        assert!(serve(&argv(&[idx, "--port", "notaport"]), None).is_err());
        assert!(
            serve(&argv(&[idx, "--profile-hz", "97"]), None).is_err(),
            "--profile-hz needs --trace"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_answers_queries_and_drains_on_request() {
        let dir = temp_dir("serve_cli");
        let idx_path = dir.join("corpus.vidx");
        let idx = idx_path.to_str().unwrap().to_string();
        index(&argv(&[
            "build",
            "--out",
            &idx,
            "--size",
            "tiny",
            "--per-source",
            "2",
            "--seed",
            "3",
        ]))
        .unwrap();

        // Reserve a free port, release it, and hand it to the server —
        // the CLI prints the bound address but a same-process test cannot
        // read its own stdout.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");

        let trace_path = dir.join("serve.jsonl");
        let server = {
            let idx = idx.clone();
            let trace_path = trace_path.clone();
            std::thread::spawn(move || {
                serve(
                    &argv(&[&idx, "--port", &port.to_string(), "--no-rerank", "--k", "2"]),
                    Some(&trace_path),
                )
            })
        };

        let mut healthy = false;
        for _ in 0..100 {
            if http_get(&addr, "/healthz").is_some_and(|r| r.contains("ok")) {
                healthy = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        assert!(healthy, "server never answered /healthz");

        let target = "/search?kind=unionable&table=tpcdi/unionable_0";
        let cold = http_get(&addr, target).expect("search answers");
        assert!(cold.contains("200 OK"), "{cold}");
        assert!(cold.contains("X-Valentine-Cache: miss"), "{cold}");
        let warm = http_get(&addr, target).expect("repeat answers");
        assert!(warm.contains("X-Valentine-Cache: hit"), "{warm}");
        let cold_id = response_header(&cold, "X-Valentine-Request-Id").expect("id echoed");
        let warm_id = response_header(&warm, "X-Valentine-Request-Id").expect("id echoed");
        assert_ne!(cold_id, warm_id, "every request gets its own id");

        valentine_serve::shutdown::request();
        let code = server.join().unwrap().expect("serve drains cleanly");
        assert_eq!(code, 0);

        // The graceful drain flushed a trace holding the serving counters
        // plus one `request` line per request answered while serving.
        let text = fs::read_to_string(&trace_path).unwrap();
        let data = parse_trace(&text);
        assert_eq!(data.malformed, 0, "{:?}", data.first_error);
        assert!(text.contains("serve/cache_hits"), "{text}");
        assert!(!data.requests.is_empty());
        for id in [&cold_id, &warm_id] {
            assert_eq!(
                data.requests.iter().filter(|e| &e.id == id).count(),
                1,
                "each echoed id correlates exactly one trace request line"
            );
        }

        // The cache miss carried its span snapshot: one request's full
        // tree (queue wait included) is reconstructable by id.
        let trace_file = trace_path.to_str().unwrap();
        let report =
            valentine_core::trace::render_request_report(&data, &cold_id).expect("report renders");
        assert!(report.contains(&cold_id), "{report}");
        assert!(report.contains("queue_wait"), "{report}");
        trace(&argv(&["report", trace_file, "--request", &cold_id]))
            .expect("trace report --request works");
        assert!(
            trace(&argv(&["report", trace_file, "--request", "no-such-id"])).is_err(),
            "unknown request ids fail loudly"
        );
        assert!(
            trace(&argv(&["flame", trace_file])).is_err(),
            "no profiler samples without --profile-hz"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_then_trace_report_roundtrip() {
        let dir = temp_dir("run_trace");
        let trace_path = dir.join("trace.jsonl");
        run_experiments(&argv(&["--size", "tiny", "--seed", "7"]), Some(&trace_path))
            .expect("run works");
        assert!(trace_path.exists());

        let text = fs::read_to_string(&trace_path).unwrap();
        let data = parse_trace(&text);
        assert_eq!(data.malformed, 0, "{:?}", data.first_error);
        assert_eq!(data.records.len(), 2 * MatcherKind::ALL.len());
        let report = render_trace_report(&data);
        for kind in MatcherKind::ALL {
            assert!(report.contains(kind.label()), "{report}");
        }
        for category in valentine_core::trace::PHASE_CATEGORIES {
            assert!(report.contains(category), "{report}");
        }
        assert!(!report.contains("warning"), "{report}");
        trace(&argv(&["report", trace_path.to_str().unwrap()])).expect("report works");
        assert!(
            trace(&argv(&[
                "report",
                trace_path.to_str().unwrap(),
                "--request",
                "deadbeef"
            ]))
            .is_err(),
            "a run trace has no served requests to reconstruct"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_with_profiler_emits_flame_ready_stacks() {
        let dir = temp_dir("run_flame");
        let trace_path = dir.join("trace.jsonl");
        assert!(
            run_experiments(&argv(&["--size", "tiny", "--profile-hz", "499"]), None).is_err(),
            "--profile-hz needs --trace"
        );
        run_experiments(
            &argv(&["--size", "tiny", "--seed", "7", "--profile-hz", "499"]),
            Some(&trace_path),
        )
        .expect("profiled run works");

        let data = parse_trace(&fs::read_to_string(&trace_path).unwrap());
        assert_eq!(data.malformed, 0, "{:?}", data.first_error);
        assert!(
            !data.profiles.is_empty(),
            "499 Hz over a full tiny run must catch at least one live span stack"
        );
        let flame = render_flame(&data).expect("flame renders");
        let first = flame.lines().next().unwrap();
        let (stack, count) = first.rsplit_once(' ').unwrap();
        assert!(
            stack.contains(';'),
            "folded stacks are `thread;span;...`: {first}"
        );
        assert!(count.parse::<u64>().unwrap() >= 1, "{first}");
        trace(&argv(&["flame", trace_path.to_str().unwrap()])).expect("trace flame works");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_run_uses_pool_wider_than_pair_count() {
        let dir = temp_dir("grid_run");
        let trace_path = dir.join("trace.jsonl");
        run_experiments(
            &argv(&["--size", "tiny", "--seed", "5", "--grid", "--threads", "8"]),
            Some(&trace_path),
        )
        .expect("grid run works");
        let data = parse_trace(&fs::read_to_string(&trace_path).unwrap());
        assert_eq!(data.malformed, 0, "{:?}", data.first_error);
        // 2 pairs × the paper's 135 configurations
        assert_eq!(
            data.records.len(),
            2 * valentine_core::grids::total_configurations(GridScale::Small)
        );
        // 8 threads over 2 pairs: the (pair × method) axis must spread the
        // work beyond pairs.len() workers
        let workers: std::collections::BTreeSet<usize> =
            data.records.iter().map(|r| r.worker).collect();
        assert!(workers.len() > 2, "workers used: {workers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_without_trace_prints_summary_only() {
        let code =
            run_experiments(&argv(&["--size", "tiny", "--seed", "3"]), None).expect("run works");
        assert_eq!(code, 0);
    }

    #[test]
    fn run_exit_code_flags_fully_failed_methods() {
        // `error@*` fails every match invocation: all methods are 100%
        // failed, which must surface as exit code 1 (not a silent table of
        // zeros).
        let code = run_experiments(
            &argv(&["--size", "tiny", "--seed", "3", "--fault", "error@*"]),
            None,
        )
        .expect("run completes despite injected errors");
        assert_eq!(code, 1);
    }

    #[test]
    fn run_rejects_bad_resilience_flags() {
        assert!(run_experiments(&argv(&["--task-deadline", "soon"]), None).is_err());
        assert!(run_experiments(&argv(&["--fault", "warp@3"]), None).is_err());
        assert!(
            run_experiments(&argv(&["--resume", "/nonexistent.ck.jsonl"]), None).is_err(),
            "resume from a missing checkpoint must fail loudly"
        );
    }

    #[test]
    fn checkpoint_resume_report_matches_uninterrupted_run() {
        let dir = temp_dir("ck_resume");
        let clean = dir.join("clean.txt");
        let resumed = dir.join("resumed.txt");
        let ck = dir.join("run.ck.jsonl");
        let (clean_s, resumed_s, ck_s) = (
            clean.to_str().unwrap(),
            resumed.to_str().unwrap(),
            ck.to_str().unwrap(),
        );

        // The reference: an uninterrupted run's summary.
        let code = run_experiments(
            &argv(&["--size", "tiny", "--seed", "7", "--summary", clean_s]),
            None,
        )
        .unwrap();
        assert_eq!(code, 0);

        // The "crashing" run: one injected error mid-grid, journaled to a
        // checkpoint. The errored cell is exactly what resume must redo.
        run_experiments(
            &argv(&[
                "--size",
                "tiny",
                "--seed",
                "7",
                "--fault",
                "error@4",
                "--checkpoint",
                ck_s,
            ]),
            None,
        )
        .unwrap();

        // Resume: re-runs only the errored cell, carries the rest over, and
        // must render a summary byte-identical to the uninterrupted run.
        let code = run_experiments(
            &argv(&[
                "--size",
                "tiny",
                "--seed",
                "7",
                "--resume",
                ck_s,
                "--summary",
                resumed_s,
            ]),
            None,
        )
        .unwrap();
        assert_eq!(code, 0);
        assert_eq!(
            fs::read_to_string(&clean).unwrap(),
            fs::read_to_string(&resumed).unwrap(),
            "resumed summary must be byte-identical to the clean run's"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_rejects_unknown_source_and_size() {
        assert!(run_experiments(&argv(&["--source", "ghost"]), None).is_err());
        assert!(run_experiments(&argv(&["--size", "galactic"]), None).is_err());
    }

    #[test]
    fn trace_rejects_bad_inputs() {
        assert!(trace(&argv(&["report"])).is_err(), "file required");
        assert!(trace(&argv(&["report", "/nonexistent.jsonl"])).is_err());
        assert!(trace(&argv(&["flame", "/nonexistent.jsonl"])).is_err());
        assert!(trace(&argv(&["replay"])).is_err(), "unknown subcommand");
    }

    #[test]
    fn index_rejects_bad_inputs() {
        assert!(index(&argv(&["teleport"])).is_err(), "unknown subcommand");
        assert!(index(&argv(&["build"])).is_err(), "--out required");
        assert!(
            index(&argv(&[
                "build",
                "--out",
                "/tmp/x.vidx",
                "--format",
                "v3",
                "--per-source",
                "1"
            ]))
            .is_err(),
            "unknown format"
        );
        assert!(index(&argv(&["add", "/nonexistent.vidx"])).is_err());
        assert!(index(&argv(&["remove", "/nonexistent.vidx", "--table", "t"])).is_err());
        assert!(index(&argv(&["compact", "/nonexistent.vidx"])).is_err());
        assert!(index(&argv(&["search", "/nonexistent.vidx", "--query", "q.csv"])).is_err());
        assert!(index(&argv(&[
            "build",
            "--out",
            "/tmp/x.vidx",
            "--csv-dir",
            "/nonexistent_dir"
        ]))
        .is_err());
        let dir = temp_dir("index_badmode");
        let idx_path = dir.join("i.vidx");
        let idx = idx_path.to_str().unwrap();
        index(&argv(&["build", "--out", idx, "--per-source", "1"])).unwrap();
        let q = dir.join("q.csv");
        fs::write(&q, "a,b\n1,2\n").unwrap();
        let qs = q.to_str().unwrap();
        assert!(index(&argv(&["search", idx, "--query", qs, "--mode", "sideways"])).is_err());
        assert!(
            index(&argv(&["search", idx, "--query", qs, "--mode", "joinable"])).is_err(),
            "--column required for joinable"
        );
        assert!(
            index(&argv(&[
                "search", idx, "--query", qs, "--mode", "joinable", "--column", "zz"
            ]))
            .is_err(),
            "column must exist in the query"
        );
        assert!(index(&argv(&["search", idx, "--query", qs, "--method", "ghost"])).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
